package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the daemon's hand-rolled metric registry, exposed on
// GET /metrics in the Prometheus text exposition format (the container
// has no client library, and the daemon needs only counters, gauges and
// one fixed-bucket histogram — ~100 lines beats a dependency).
type Metrics struct {
	start time.Time

	updates     atomic.Uint64 // stream updates folded into every backend
	batches     atomic.Uint64 // update batches admitted
	feedErrors  atomic.Uint64 // malformed/rejected feed lines
	checkpoints atomic.Uint64 // snapshots written (auto + forced + final)
	lastCkpt    atomic.Int64  // unix nanos of the last snapshot (0 = none)

	mu      sync.Mutex
	queries map[string]*queryStats // per target
	latency histogram
	phases  map[string]*histogram // per build/ingest phase, fed by the tracer
	phOrder []string              // first-observed phase order, for stable output
}

// queryStats is one target's query counters.
type queryStats struct {
	served uint64
	errors uint64
}

// latencyBuckets are the query-latency histogram bounds in seconds
// (cumulative, +Inf implicit) — spanning sub-ms cache-hit queries to
// multi-second cold extractions.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	counts [numBuckets + 1]uint64 // counts[i]: observations <= latencyBuckets[i]; last = +Inf
	sum    float64
	total  uint64
}

const numBuckets = 12 // len(latencyBuckets); const so the array is fixed-size

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), queries: map[string]*queryStats{}, phases: map[string]*histogram{}}
}

// AddUpdates records one admitted update batch of the given size.
func (m *Metrics) AddUpdates(n int) {
	m.updates.Add(uint64(n))
	m.batches.Add(1)
}

// AddFeedError records one malformed or rejected feed line.
func (m *Metrics) AddFeedError() { m.feedErrors.Add(1) }

// AddCheckpoint records one written snapshot.
func (m *Metrics) AddCheckpoint() {
	m.checkpoints.Add(1)
	m.lastCkpt.Store(time.Now().UnixNano())
}

// ObserveQuery records one query against target with its latency and
// outcome.
func (m *Metrics) ObserveQuery(target string, d time.Duration, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	qs := m.queries[target]
	if qs == nil {
		qs = &queryStats{}
		m.queries[target] = qs
	}
	if err != nil {
		qs.errors++
		return
	}
	qs.served++
	m.latency.observe(d.Seconds())
}

// ObservePhase records one completed pipeline phase (an obs span end)
// with its wall-clock duration. Phases share the query-latency bucket
// bounds: ingest shards and Borůvka rounds land in the same sub-second
// range as queries.
func (m *Metrics) ObservePhase(phase string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.phases[phase]
	if h == nil {
		h = &histogram{}
		m.phases[phase] = h
		m.phOrder = append(m.phOrder, phase)
	}
	h.observe(d.Seconds())
}

// observe folds one reading into the histogram. Caller holds m.mu.
func (h *histogram) observe(sec float64) {
	h.sum += sec
	h.total++
	for i, b := range latencyBuckets {
		if sec <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[numBuckets]++
}

// Snapshot totals for /v1/status.

// UpdatesTotal returns the cumulative admitted update count.
func (m *Metrics) UpdatesTotal() uint64 { return m.updates.Load() }

// QueriesTotal returns the cumulative successfully served query count.
func (m *Metrics) QueriesTotal() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t uint64
	for _, qs := range m.queries {
		t += qs.served
	}
	return t
}

// Checkpoints returns the cumulative snapshot count.
func (m *Metrics) Checkpoints() uint64 { return m.checkpoints.Load() }

// LastCheckpoint returns the time of the last snapshot (zero if none).
func (m *Metrics) LastCheckpoint() time.Time {
	ns := m.lastCkpt.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Uptime returns the registry's age.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// targetCacheStats is the per-scrape decode-cache reading WritePrometheus
// exports; the server supplies it from each backend's handle.
type targetCacheStats struct {
	target       string
	applied      int64
	hits, misses uint64
}

// WritePrometheus writes every metric in the Prometheus text format.
// ready/draining and the per-target cache/applied gauges are sampled by
// the caller at scrape time (they live on the server and its handles,
// not in the registry).
func (m *Metrics) WritePrometheus(w io.Writer, ready, draining bool, targets []targetCacheStats) {
	b01 := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	fmt.Fprintf(w, "# HELP dynstream_up Whether the daemon is running.\n# TYPE dynstream_up gauge\ndynstream_up 1\n")
	fmt.Fprintf(w, "# HELP dynstream_ready Whether the daemon admits updates (0 while draining).\n# TYPE dynstream_ready gauge\ndynstream_ready %d\n", b01(ready))
	fmt.Fprintf(w, "# HELP dynstream_draining Whether a graceful drain is in progress.\n# TYPE dynstream_draining gauge\ndynstream_draining %d\n", b01(draining))
	fmt.Fprintf(w, "# HELP dynstream_uptime_seconds Daemon uptime.\n# TYPE dynstream_uptime_seconds gauge\ndynstream_uptime_seconds %g\n", m.Uptime().Seconds())

	fmt.Fprintf(w, "# HELP dynstream_updates_ingested_total Stream updates folded into every live handle.\n# TYPE dynstream_updates_ingested_total counter\ndynstream_updates_ingested_total %d\n", m.updates.Load())
	fmt.Fprintf(w, "# HELP dynstream_update_batches_total Update batches admitted (feed lines batch; HTTP bodies are one batch each).\n# TYPE dynstream_update_batches_total counter\ndynstream_update_batches_total %d\n", m.batches.Load())
	fmt.Fprintf(w, "# HELP dynstream_feed_errors_total Malformed or rejected update lines.\n# TYPE dynstream_feed_errors_total counter\ndynstream_feed_errors_total %d\n", m.feedErrors.Load())

	m.mu.Lock()
	names := make([]string, 0, len(m.queries))
	for t := range m.queries {
		names = append(names, t)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP dynstream_queries_total Queries served, by target and outcome.\n# TYPE dynstream_queries_total counter\n")
	for _, t := range names {
		qs := m.queries[t]
		fmt.Fprintf(w, "dynstream_queries_total{target=%q,outcome=\"ok\"} %d\n", t, qs.served)
		fmt.Fprintf(w, "dynstream_queries_total{target=%q,outcome=\"error\"} %d\n", t, qs.errors)
	}
	fmt.Fprintf(w, "# HELP dynstream_query_latency_seconds Successful query latency.\n# TYPE dynstream_query_latency_seconds histogram\n")
	var cum uint64
	for i, b := range latencyBuckets {
		cum += m.latency.counts[i]
		fmt.Fprintf(w, "dynstream_query_latency_seconds_bucket{le=\"%g\"} %d\n", b, cum)
	}
	fmt.Fprintf(w, "dynstream_query_latency_seconds_bucket{le=\"+Inf\"} %d\n", m.latency.total)
	fmt.Fprintf(w, "dynstream_query_latency_seconds_sum %g\n", m.latency.sum)
	fmt.Fprintf(w, "dynstream_query_latency_seconds_count %d\n", m.latency.total)
	if len(m.phOrder) > 0 {
		fmt.Fprintf(w, "# HELP dynstream_phase_duration_seconds Pipeline phase wall time (ingest shards, Borůvka rounds, decode, checkpoint), by phase.\n# TYPE dynstream_phase_duration_seconds histogram\n")
		for _, ph := range m.phOrder {
			h := m.phases[ph]
			var cum uint64
			for i, b := range latencyBuckets {
				cum += h.counts[i]
				fmt.Fprintf(w, "dynstream_phase_duration_seconds_bucket{phase=%q,le=\"%g\"} %d\n", ph, b, cum)
			}
			fmt.Fprintf(w, "dynstream_phase_duration_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", ph, h.total)
			fmt.Fprintf(w, "dynstream_phase_duration_seconds_sum{phase=%q} %g\n", ph, h.sum)
			fmt.Fprintf(w, "dynstream_phase_duration_seconds_count{phase=%q} %d\n", ph, h.total)
		}
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP dynstream_applied_updates Updates folded into the live handle, by target.\n# TYPE dynstream_applied_updates gauge\n")
	for _, t := range targets {
		fmt.Fprintf(w, "dynstream_applied_updates{target=%q} %d\n", t.target, t.applied)
	}
	fmt.Fprintf(w, "# HELP dynstream_decode_cache_hits_total Decode-cache region hits, by target.\n# TYPE dynstream_decode_cache_hits_total counter\n")
	for _, t := range targets {
		fmt.Fprintf(w, "dynstream_decode_cache_hits_total{target=%q} %d\n", t.target, t.hits)
	}
	fmt.Fprintf(w, "# HELP dynstream_decode_cache_misses_total Decode-cache region misses, by target.\n# TYPE dynstream_decode_cache_misses_total counter\n")
	for _, t := range targets {
		fmt.Fprintf(w, "dynstream_decode_cache_misses_total{target=%q} %d\n", t.target, t.misses)
	}

	fmt.Fprintf(w, "# HELP dynstream_checkpoints_total Snapshots written (auto, forced, and final).\n# TYPE dynstream_checkpoints_total counter\ndynstream_checkpoints_total %d\n", m.checkpoints.Load())
	if last := m.LastCheckpoint(); !last.IsZero() {
		fmt.Fprintf(w, "# HELP dynstream_checkpoint_age_seconds Seconds since the last snapshot.\n# TYPE dynstream_checkpoint_age_seconds gauge\ndynstream_checkpoint_age_seconds %g\n", time.Since(last).Seconds())
	}
}
