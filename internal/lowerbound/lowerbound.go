// Package lowerbound implements the Ω(nd) space lower bound experiment
// of Theorem 4 (Section 5): a two-player INDEX game reduced to
// single-pass additive-spanner construction.
//
// Alice holds s = Θ(n/d) disjoint random graphs G_1..G_s, each drawn
// from G(d, 1/2); her bit string X is their edge indicators. Bob holds
// an index — a pair {U, V} inside block J — and must output X_I. Alice
// streams her edges through the spanner algorithm and sends its state;
// Bob appends path edges {V_ℓ, U_{ℓ+1}} linking his per-block pairs,
// finishes the computation, and answers "edge present" iff {U, V}
// appears in the returned spanner. If the spanner has additive
// distortion ≤ n/d, Bob wins with probability ≥ 2/3, so the state must
// be Ω(nd) bits [KNR99]. Empirically: the success rate stays near 1
// while the algorithm's space budget matches Θ(nd) and degrades toward
// coin-flipping as the budget shrinks below the block size.
package lowerbound

import (
	"fmt"
	"math"

	"dynstream/internal/hashing"
	"dynstream/internal/spanner"
	"dynstream/internal/stream"
)

// GameConfig parameterizes the INDEX game instance.
type GameConfig struct {
	// Blocks is s, the number of disjoint G(d, 1/2) blocks.
	Blocks int
	// BlockSize is d, vertices per block.
	BlockSize int
	// AlgD is the d-parameter given to the additive-spanner algorithm —
	// its space knob (space Θ(n·AlgD)). The theorem predicts success
	// iff AlgD is at least around BlockSize.
	AlgD int
	// Trials is the number of independent games to play.
	Trials int
	// Seed selects all randomness.
	Seed uint64
}

// GameResult summarizes Trials plays of the game.
type GameResult struct {
	// Successes counts trials where Bob answered X_I correctly.
	Successes int
	// Trials echoes the number of games played.
	Trials int
	// SpaceWords is the algorithm state size of the last trial (what
	// Alice "sends" — the object the lower bound measures).
	SpaceWords int
	// InstanceBits is the entropy of Alice's input, s·(d choose 2) —
	// the Ω(nd) yardstick.
	InstanceBits int
}

// SuccessRate returns the empirical success probability.
func (r GameResult) SuccessRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Trials)
}

// Play runs the INDEX game Trials times and reports Bob's success rate.
func Play(cfg GameConfig) (GameResult, error) {
	if cfg.Blocks < 1 || cfg.BlockSize < 2 {
		return GameResult{}, fmt.Errorf("lowerbound: need Blocks >= 1, BlockSize >= 2, got %d/%d",
			cfg.Blocks, cfg.BlockSize)
	}
	if cfg.Trials < 1 {
		cfg.Trials = 1
	}
	if cfg.AlgD < 1 {
		cfg.AlgD = cfg.BlockSize
	}
	s, d := cfg.Blocks, cfg.BlockSize
	n := s * d
	res := GameResult{Trials: cfg.Trials, InstanceBits: s * d * (d - 1) / 2}

	for trial := 0; trial < cfg.Trials; trial++ {
		rng := hashing.NewSplitMix64(hashing.Mix(cfg.Seed, uint64(trial)))

		// Alice's input: the blocks' edge indicators.
		type pair struct{ a, b int }
		alice := map[pair]bool{}
		aliceStream := stream.NewMemoryStream(n)
		for blk := 0; blk < s; blk++ {
			base := blk * d
			for i := 0; i < d; i++ {
				for j := i + 1; j < d; j++ {
					present := rng.Next()&1 == 1
					alice[pair{base + i, base + j}] = present
					if present {
						if err := aliceStream.Append(stream.Update{U: base + i, V: base + j, Delta: 1}); err != nil {
							return res, err
						}
					}
				}
			}
		}

		// Bob's index: block J and a pair {U, V} within it; plus random
		// pairs in the other blocks.
		blockJ := rng.Intn(s)
		us := make([]int, s)
		vs := make([]int, s)
		for blk := 0; blk < s; blk++ {
			base := blk * d
			u := rng.Intn(d)
			v := rng.Intn(d - 1)
			if v >= u {
				v++
			}
			us[blk], vs[blk] = base+u, base+v
		}
		queryU, queryV := us[blockJ], vs[blockJ]

		// One-pass streaming: Alice's updates then Bob's path edges
		// {V_ℓ, U_{ℓ+1}} on the same algorithm state.
		// DegreeFactor cancels the default d·log n cutoff scaling so
		// that AlgD is the low-degree threshold itself: the algorithm's
		// per-vertex sketch budget (hence total space) tracks AlgD
		// directly, which is the knob the lower bound sweeps.
		log2n := math.Ceil(math.Log2(float64(n + 1)))
		alg := spanner.NewAdditive(n, spanner.AdditiveConfig{
			D:            cfg.AlgD,
			DegreeFactor: 1 / log2n,
			Seed:         hashing.Mix(cfg.Seed, 0xb0b, uint64(trial)),
		})
		if err := aliceStream.Replay(alg.Update); err != nil {
			return res, err
		}
		for blk := 0; blk+1 < s; blk++ {
			if err := alg.Update(stream.Update{U: vs[blk], V: us[blk+1], Delta: 1}); err != nil {
				return res, err
			}
		}
		out, err := alg.Finish()
		if err != nil {
			return res, err
		}
		res.SpaceWords = out.SpaceWords

		// Bob outputs 1 iff the queried pair occurs in the spanner.
		answer := out.Spanner.HasEdge(queryU, queryV)
		truth := alice[pair{min(queryU, queryV), max(queryU, queryV)}]
		if answer == truth {
			res.Successes++
		}
	}
	return res, nil
}
