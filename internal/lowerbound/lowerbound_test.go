package lowerbound

import "testing"

func TestPlayValidation(t *testing.T) {
	if _, err := Play(GameConfig{Blocks: 0, BlockSize: 4}); err == nil {
		t.Error("Blocks=0 accepted")
	}
	if _, err := Play(GameConfig{Blocks: 2, BlockSize: 1}); err == nil {
		t.Error("BlockSize=1 accepted")
	}
}

func TestPlayAmpleSpaceSucceeds(t *testing.T) {
	// With AlgD ≈ BlockSize the additive spanner keeps all low-degree
	// edges (every block vertex has degree < d), so Bob recovers X_I
	// essentially always.
	res, err := Play(GameConfig{Blocks: 6, BlockSize: 8, AlgD: 8, Trials: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rate := res.SuccessRate(); rate < 0.9 {
		t.Errorf("success rate %v with ample space, want >= 0.9", rate)
	}
	if res.SpaceWords <= 0 || res.InstanceBits <= 0 {
		t.Error("diagnostics not filled")
	}
}

func TestPlayStarvedSpaceDegrades(t *testing.T) {
	// With AlgD far below the block size the per-vertex neighborhood
	// sketches cannot hold the blocks, so Bob's answer degrades toward
	// guessing: success well below the ample-space regime.
	ample, err := Play(GameConfig{Blocks: 6, BlockSize: 16, AlgD: 16, Trials: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	starved, err := Play(GameConfig{Blocks: 6, BlockSize: 16, AlgD: 1, Trials: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if starved.SuccessRate() >= ample.SuccessRate() {
		t.Errorf("starved rate %v not below ample rate %v",
			starved.SuccessRate(), ample.SuccessRate())
	}
	if starved.SpaceWords >= ample.SpaceWords {
		t.Errorf("starved space %d not below ample space %d",
			starved.SpaceWords, ample.SpaceWords)
	}
}

func TestPlayDeterministicForSeed(t *testing.T) {
	a, err := Play(GameConfig{Blocks: 4, BlockSize: 6, AlgD: 6, Trials: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Play(GameConfig{Blocks: 4, BlockSize: 6, AlgD: 6, Trials: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Successes != b.Successes {
		t.Error("same seed produced different outcomes")
	}
}

func TestPlayDefaultsApplied(t *testing.T) {
	res, err := Play(GameConfig{Blocks: 2, BlockSize: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != 1 {
		t.Errorf("default trials = %d, want 1", res.Trials)
	}
}
