package sketch

import (
	"bytes"
	"testing"
)

// FuzzDigest drives arbitrary field sequences through the digest
// encoder and checks the two properties the decode caches rely on:
// the encoding round-trips (parse ∘ encode = identity), and no
// corruption of the byte string can alias a clean digest — a mutated
// encoding either fails to parse or parses to a different field
// sequence, so a stale cache entry can never be served for changed
// state.
func FuzzDigest(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, []byte{0})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, fields []byte, mut []byte) {
		// Build a field sequence from the fuzz input: each input byte
		// becomes a Tag, each run of 8 a U64.
		var d StateDigest
		var want []digestField
		for i := 0; i < len(fields); i++ {
			if fields[i]%2 == 0 && i+8 < len(fields) {
				var v uint64
				for j := 0; j < 8; j++ {
					v = v<<8 | uint64(fields[i+1+j])
				}
				d.U64(v)
				want = append(want, digestField{op: digestOpU64, val: v})
				i += 8
			} else {
				d.Tag(fields[i])
				want = append(want, digestField{op: digestOpTag, val: uint64(fields[i])})
			}
		}
		enc := []byte(d.Key())

		// Round-trip: the encoding parses back to exactly the appended
		// sequence.
		got, ok := parseDigest(enc)
		if !ok {
			t.Fatalf("clean digest failed to parse: %x", enc)
		}
		if len(got) != len(want) {
			t.Fatalf("round-trip length: got %d fields, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("field %d: got %+v, want %+v", i, got[i], want[i])
			}
		}

		// No aliasing: corrupt the encoding with the mutation input;
		// any byte string that differs from enc must not parse to the
		// same sequence.
		if len(enc) == 0 || len(mut) == 0 {
			return
		}
		cor := append([]byte(nil), enc...)
		for i, m := range mut {
			cor[i%len(cor)] ^= m
		}
		if bytes.Equal(cor, enc) {
			return // mutation canceled out; nothing corrupted
		}
		gotCor, ok := parseDigest(cor)
		if !ok {
			return // corruption detected at parse — cannot alias
		}
		same := len(gotCor) == len(want)
		for i := 0; same && i < len(gotCor); i++ {
			same = gotCor[i] == want[i]
		}
		if same {
			t.Fatalf("corrupted digest %x aliases clean digest %x", cor, enc)
		}
	})
}

// TestDigestDistinguishesOrderAndKind pins the injectivity corners a
// hash-based digest would get wrong: field order, tag-vs-value kind,
// and value splits.
func TestDigestDistinguishesOrderAndKind(t *testing.T) {
	var a, b StateDigest
	a.Tag(1)
	a.U64(2)
	b.U64(2)
	b.Tag(1)
	if a.Key() == b.Key() {
		t.Error("digest does not distinguish field order")
	}
	a.Reset()
	b.Reset()
	a.Tag(7)
	b.U64(7)
	if a.Key() == b.Key() {
		t.Error("digest does not distinguish tag from value")
	}
	a.Reset()
	b.Reset()
	a.U64(1)
	a.U64(2)
	b.U64(2)
	b.U64(1)
	if a.Key() == b.Key() {
		t.Error("digest does not distinguish value order")
	}
}
