package sketch

import (
	"testing"

	"dynstream/internal/hashing"
)

func TestL0EmptyReturnsNotOK(t *testing.T) {
	s := NewL0Sampler(1, 1<<20, 4)
	if _, _, ok := s.Sample(); ok {
		t.Error("empty sampler returned a sample")
	}
}

func TestL0SingleItem(t *testing.T) {
	s := NewL0Sampler(2, 1<<20, 4)
	s.Add(777, 5)
	k, w, ok := s.Sample()
	if !ok || k != 777 || w != 5 {
		t.Errorf("sample = (%d,%d,%v), want (777,5,true)", k, w, ok)
	}
}

func TestL0SampleInSupport(t *testing.T) {
	for trial := uint64(0); trial < 30; trial++ {
		s := NewL0Sampler(hashing.Mix(3, trial), 1<<30, 4)
		rng := hashing.NewSplitMix64(trial + 100)
		support := map[uint64]int64{}
		for i := 0; i < 200; i++ {
			k := rng.Next() % (1 << 30)
			support[k] = int64(rng.Intn(5) + 1)
		}
		for k, v := range support {
			s.Add(k, v)
		}
		k, w, ok := s.Sample()
		if !ok {
			t.Fatalf("trial %d: sample failed on 200-item support", trial)
		}
		if support[k] != w {
			t.Fatalf("trial %d: sampled (%d,%d) not in support", trial, k, w)
		}
	}
}

func TestL0SurvivesDeletions(t *testing.T) {
	s := NewL0Sampler(4, 1<<20, 4)
	for k := uint64(0); k < 500; k++ {
		s.Add(k, 1)
	}
	for k := uint64(1); k < 500; k++ {
		s.Add(k, -1)
	}
	k, w, ok := s.Sample()
	if !ok || k != 0 || w != 1 {
		t.Errorf("sample = (%d,%d,%v), want (0,1,true)", k, w, ok)
	}
}

func TestL0FullCancellation(t *testing.T) {
	s := NewL0Sampler(5, 1<<20, 4)
	for k := uint64(0); k < 300; k++ {
		s.Add(k, 1)
		s.Add(k, -1)
	}
	if _, _, ok := s.Sample(); ok {
		t.Error("cancelled sampler returned a sample")
	}
}

func TestL0MergeAcrossVectors(t *testing.T) {
	// The AGM use case: merging samplers of x and y samples from
	// support(x+y); internal edges cancel.
	a := NewL0Sampler(6, 1<<20, 4)
	b := NewL0Sampler(6, 1<<20, 4)
	a.Add(11, 1)  // shared edge, +1 direction
	b.Add(11, -1) // shared edge, -1 direction: cancels
	a.Add(22, 1)  // a's outgoing edge
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	k, w, ok := a.Sample()
	if !ok || k != 22 || w != 1 {
		t.Errorf("sample = (%d,%d,%v), want (22,1,true)", k, w, ok)
	}
}

func TestL0SubInverse(t *testing.T) {
	a := NewL0Sampler(7, 1<<20, 4)
	b := NewL0Sampler(7, 1<<20, 4)
	a.Add(5, 1)
	b.Add(9, 2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := a.Sub(b); err != nil {
		t.Fatal(err)
	}
	k, _, ok := a.Sample()
	if !ok || k != 5 {
		t.Errorf("sample key = %d, want 5", k)
	}
}

func TestL0CloneIndependent(t *testing.T) {
	a := NewL0Sampler(8, 1<<20, 4)
	a.Add(1, 1)
	c := a.Clone()
	c.Add(1, -1)
	if _, _, ok := a.Sample(); !ok {
		t.Error("clone mutation leaked into original")
	}
	if _, _, ok := c.Sample(); ok {
		t.Error("clone should be empty after cancellation")
	}
}

func TestL0SamplesSpread(t *testing.T) {
	// Across independent seeds, samples from a fixed 20-element support
	// should hit many distinct elements (near-uniformity smoke test).
	support := make([]uint64, 20)
	for i := range support {
		support[i] = uint64(i * 101)
	}
	seen := map[uint64]bool{}
	for trial := uint64(0); trial < 120; trial++ {
		s := NewL0Sampler(hashing.Mix(9, trial), 1<<20, 4)
		for _, k := range support {
			s.Add(k, 1)
		}
		if k, _, ok := s.Sample(); ok {
			seen[k] = true
		}
	}
	if len(seen) < 10 {
		t.Errorf("only %d/20 support elements ever sampled", len(seen))
	}
}

func TestL0SpaceWords(t *testing.T) {
	s := NewL0Sampler(10, 1<<20, 4)
	if s.SpaceWords() <= 0 {
		t.Error("space must be positive")
	}
}
