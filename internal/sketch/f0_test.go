package sketch

import (
	"testing"

	"dynstream/internal/hashing"
)

func TestF0Empty(t *testing.T) {
	f := NewF0(1, 1<<20)
	if est := f.Estimate(); est != 0 {
		t.Errorf("empty estimate = %v, want 0", est)
	}
	if f.ExceedsThreshold(0) {
		t.Error("empty estimator exceeds threshold 0")
	}
}

func TestF0ConstantFactor(t *testing.T) {
	for _, n := range []int{10, 100, 1000, 20000} {
		f := NewF0(hashing.Mix(2, uint64(n)), 1<<30)
		for k := uint64(0); k < uint64(n); k++ {
			f.Add(k*7919, 1)
		}
		est := f.Estimate()
		if est < float64(n)/3 || est > float64(n)*3 {
			t.Errorf("n=%d: estimate %v outside 3x band", n, est)
		}
	}
}

func TestF0IgnoresMultiplicity(t *testing.T) {
	f := NewF0(3, 1<<20)
	for k := uint64(0); k < 50; k++ {
		f.Add(k, 100) // huge multiplicities, still 50 distinct
	}
	est := f.Estimate()
	if est < 15 || est > 150 {
		t.Errorf("estimate %v for 50 distinct keys", est)
	}
}

func TestF0Deletions(t *testing.T) {
	f := NewF0(4, 1<<20)
	for k := uint64(0); k < 1000; k++ {
		f.Add(k, 1)
	}
	for k := uint64(0); k < 990; k++ {
		f.Add(k, -1)
	}
	est := f.Estimate()
	if est < 2 || est > 40 {
		t.Errorf("estimate %v after deletions, want ~10", est)
	}
}

func TestF0FullCancellation(t *testing.T) {
	f := NewF0(5, 1<<20)
	for k := uint64(0); k < 500; k++ {
		f.Add(k, 3)
		f.Add(k, -3)
	}
	if est := f.Estimate(); est != 0 {
		t.Errorf("fully cancelled estimate = %v, want 0", est)
	}
}

func TestF0GuardUsage(t *testing.T) {
	// The decodability guard: with 4B distinct items, ExceedsThreshold(2B)
	// must fire; with B/4 items it must not (using the 3x error band).
	const b = 64
	f := NewF0(6, 1<<20)
	for k := uint64(0); k < 4*b; k++ {
		f.Add(k, 1)
	}
	if !f.ExceedsThreshold(2 * b) {
		t.Error("guard failed to fire at 4B distinct items vs 2B threshold")
	}
	g := NewF0(7, 1<<20)
	for k := uint64(0); k < b/4; k++ {
		g.Add(k, 1)
	}
	if g.ExceedsThreshold(2 * b) {
		t.Error("guard fired at B/4 items vs 2B threshold")
	}
}

func TestF0MergeSub(t *testing.T) {
	a := NewF0(8, 1<<20)
	b := NewF0(8, 1<<20)
	for k := uint64(0); k < 100; k++ {
		a.Add(k, 1)
	}
	for k := uint64(100); k < 200; k++ {
		b.Add(k, 1)
	}
	a.Merge(b)
	est := a.Estimate()
	if est < 60 || est > 600 {
		t.Errorf("merged estimate %v, want ~200", est)
	}
	a.Sub(b)
	est = a.Estimate()
	if est < 30 || est > 300 {
		t.Errorf("after sub estimate %v, want ~100", est)
	}
}

func TestF0SpaceWords(t *testing.T) {
	f := NewF0(9, 1<<20)
	if f.SpaceWords() <= 0 {
		t.Error("space must be positive")
	}
}
