package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynstream/internal/hashing"
)

// Property-based tests on the core sketch invariants, driven by
// testing/quick over random operation sequences.

// opSeq interprets a byte string as a sequence of signed updates over a
// small key space, returning the reference vector.
func applyOps(ops []byte, add func(key uint64, delta int64)) map[uint64]int64 {
	ref := map[uint64]int64{}
	for i := 0; i+1 < len(ops); i += 2 {
		key := uint64(ops[i]) % 64
		delta := int64(int8(ops[i+1]))
		if delta == 0 {
			continue
		}
		add(key, delta)
		ref[key] += delta
		if ref[key] == 0 {
			delete(ref, key)
		}
	}
	return ref
}

func TestPropertySketchBMatchesReference(t *testing.T) {
	// For any operation sequence whose final support fits the budget,
	// Decode returns exactly the reference vector.
	f := func(ops []byte) bool {
		s := NewSketchB(41, 64) // budget covers the whole 64-key space
		ref := applyOps(ops, s.Add)
		got, ok := s.Decode()
		if !ok {
			return false
		}
		if len(got) != len(ref) {
			return false
		}
		for k, v := range ref {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(109))}); err != nil {
		t.Error(err)
	}
}

func TestPropertySketchBAdditivity(t *testing.T) {
	// sketch(ops1) + sketch(ops2) == sketch(ops1 ++ ops2), cell by cell.
	f := func(ops1, ops2 []byte) bool {
		a := NewSketchB(43, 64)
		b := NewSketchB(43, 64)
		c := NewSketchB(43, 64)
		applyOps(ops1, a.Add)
		applyOps(ops2, b.Add)
		applyOps(ops1, c.Add)
		applyOps(ops2, c.Add)
		if err := a.Merge(b); err != nil {
			return false
		}
		// Compare decoded vectors (cells must agree, so vectors do).
		ga, oka := a.Decode()
		gc, okc := c.Decode()
		if oka != okc || len(ga) != len(gc) {
			return false
		}
		for k, v := range gc {
			if ga[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(110))}); err != nil {
		t.Error(err)
	}
}

func TestPropertySketchBSubIsInverse(t *testing.T) {
	f := func(ops1, ops2 []byte) bool {
		a := NewSketchB(47, 64)
		b := NewSketchB(47, 64)
		applyOps(ops1, a.Add)
		applyOps(ops2, b.Add)
		if err := a.Merge(b); err != nil {
			return false
		}
		if err := a.Sub(b); err != nil {
			return false
		}
		ref := NewSketchB(47, 64)
		applyOps(ops1, ref.Add)
		ga, oka := a.Decode()
		gr, okr := ref.Decode()
		if oka != okr || len(ga) != len(gr) {
			return false
		}
		for k, v := range gr {
			if ga[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(111))}); err != nil {
		t.Error(err)
	}
}

func TestPropertyL0SampleAlwaysInSupport(t *testing.T) {
	f := func(ops []byte, seed uint64) bool {
		s := NewL0Sampler(seed, 64, 4)
		ref := applyOps(ops, s.Add)
		k, w, ok := s.Sample()
		if len(ref) == 0 {
			return !ok
		}
		if !ok {
			// whp failure allowed but should be rare; treat as pass to
			// keep the property deterministic — correctness is "no
			// wrong answer", tested here, while success probability is
			// covered by unit tests.
			return true
		}
		return ref[k] == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(112))}); err != nil {
		t.Error(err)
	}
}

func TestPropertyF0NeverNegative(t *testing.T) {
	f := func(ops []byte, seed uint64) bool {
		fo := NewF0(seed, 64)
		ref := applyOps(ops, fo.Add)
		est := fo.Estimate()
		if est < 0 {
			return false
		}
		if len(ref) == 0 && est != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(113))}); err != nil {
		t.Error(err)
	}
}

func TestPropertyCountSketchQueryMatchesOnIsolatedKeys(t *testing.T) {
	// A key whose net weight is zero must query to 0 whp; a decode of
	// an in-budget vector must match the reference.
	f := func(ops []byte) bool {
		cs := NewCountSketch(53, 64)
		ref := applyOps(ops, cs.Add)
		got, ok := cs.Decode()
		if !ok {
			return true // whp failure tolerated, wrong answers are not
		}
		if len(got) != len(ref) {
			return false
		}
		for k, v := range ref {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(114))}); err != nil {
		t.Error(err)
	}
}

func TestPropertyKeyedSketchNeverInventsEdges(t *testing.T) {
	// Whatever the update sequence, DecodeKey may fail but must never
	// return an inside endpoint that was not actually added for the key.
	f := func(ops []byte, seed uint64) bool {
		const n = 32
		ks := NewKeyedEdgeSketch(seed, n, 16)
		added := map[[2]int]int64{}
		for i := 0; i+2 < len(ops); i += 3 {
			w := int(ops[i]) % n
			v := int(ops[i+1]) % n
			d := int64(int8(ops[i+2]))
			if d == 0 {
				continue
			}
			ks.Add(w, v, d)
			added[[2]int{w, v}] += d
		}
		for v := 0; v < n; v++ {
			w, ok := ks.DecodeKey(v)
			if !ok {
				continue
			}
			if added[[2]int{w, v}] == 0 {
				return false // invented or cancelled edge returned
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(115))}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMarshalPreservesDecode(t *testing.T) {
	f := func(ops []byte) bool {
		s := NewSketchB(59, 64)
		applyOps(ops, s.Add)
		enc, err := s.MarshalBinary()
		if err != nil {
			return false
		}
		var back SketchB
		if err := back.UnmarshalBinary(enc); err != nil {
			return false
		}
		g1, ok1 := s.Decode()
		g2, ok2 := back.Decode()
		if ok1 != ok2 || len(g1) != len(g2) {
			return false
		}
		for k, v := range g1 {
			if g2[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(116))}); err != nil {
		t.Error(err)
	}
}

// Guard against accidental correlation between the sub-seeds Mix hands
// to sibling sketches: distinct (r, j) pairs must produce sketches that
// disagree on bucket placement for most keys.
func TestPropertySeedSeparation(t *testing.T) {
	base := uint64(77)
	a := hashing.NewPoly(hashing.Mix(base, 1, 2), 6)
	b := hashing.NewPoly(hashing.Mix(base, 2, 1), 6)
	same := 0
	for x := uint64(0); x < 1000; x++ {
		if a.Bucket(x, 64) == b.Bucket(x, 64) {
			same++
		}
	}
	// Independent hashing agrees on ~1/64 of keys.
	if same > 60 {
		t.Errorf("sibling seeds correlate: %d/1000 bucket agreements", same)
	}
}
