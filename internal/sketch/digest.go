package sketch

import "encoding/binary"

// StateDigest accumulates a cheap, injective fingerprint of a decode
// region's identifying state: kind tags, seeds, geometry, and
// generation counters. Decode caches (the spanner's per-center cluster
// tables, the sparsifier's per-cell grid extractions) key cached
// results by the digest of everything the extraction read; a region
// whose digest is unchanged since the cached decode is provably in the
// same state, because generations are monotonic and the encoding is
// injective.
//
// Injectivity is by framing, not hashing: every append writes a
// self-describing op byte followed by a fixed-width value, so two
// distinct append sequences can never encode to the same bytes and a
// corrupted byte string can never alias a clean digest while parsing
// as the same sequence. There is no compression step to collide.
type StateDigest struct {
	b []byte
}

// Digest op bytes. Each op is followed by a fixed-width payload, which
// is what makes the framing prefix-free and the encoding injective.
const (
	digestOpTag byte = 0x01 // 1-byte region kind tag
	digestOpU64 byte = 0x02 // 8-byte little-endian value
)

// Reset clears the digest for reuse, keeping its buffer.
func (d *StateDigest) Reset() { d.b = d.b[:0] }

// Tag appends a region kind tag (which sketch family, which cache).
func (d *StateDigest) Tag(kind byte) {
	d.b = append(d.b, digestOpTag, kind)
}

// U64 appends a 64-bit value: a seed, a generation counter, a
// geometry parameter.
func (d *StateDigest) U64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	d.b = append(d.b, digestOpU64)
	d.b = append(d.b, tmp[:]...)
}

// Int appends an int as its 64-bit value.
func (d *StateDigest) Int(v int) { d.U64(uint64(int64(v))) }

// Key returns the digest as a string, usable directly as a map key.
// The returned string copies the buffer, so the digest can be Reset
// and reused.
func (d *StateDigest) Key() string { return string(d.b) }

// digestField is one parsed field of a digest encoding — the fuzzing
// surface that proves a corrupted digest can never alias a clean one.
type digestField struct {
	op  byte
	val uint64
}

// parseDigest decodes a digest byte string back into its field
// sequence, rejecting anything the append ops could not have produced.
// It exists for the aliasing proof: parseDigest(enc(seq)) == seq for
// every sequence, and every byte string parses to at most one
// sequence, so distinct byte strings never stand for the same fields.
func parseDigest(b []byte) ([]digestField, bool) {
	var out []digestField
	for len(b) > 0 {
		switch b[0] {
		case digestOpTag:
			if len(b) < 2 {
				return nil, false
			}
			out = append(out, digestField{op: digestOpTag, val: uint64(b[1])})
			b = b[2:]
		case digestOpU64:
			if len(b) < 9 {
				return nil, false
			}
			out = append(out, digestField{op: digestOpU64, val: binary.LittleEndian.Uint64(b[1:9])})
			b = b[9:]
		default:
			return nil, false
		}
	}
	return out, true
}
