package sketch

import (
	"testing"

	"dynstream/internal/hashing"
)

func BenchmarkSketchBAdd(b *testing.B) {
	s := NewSketchB(1, 32)
	rng := hashing.NewSplitMix64(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Next()%(1<<40), 1)
	}
}

func BenchmarkSketchBDecode(b *testing.B) {
	s := NewSketchB(3, 32)
	rng := hashing.NewSplitMix64(4)
	for j := 0; j < 32; j++ {
		s.Add(rng.Next()%(1<<40), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Decode(); !ok {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkSketchBMerge(b *testing.B) {
	x := NewSketchB(5, 32)
	y := NewSketchB(5, 32)
	rng := hashing.NewSplitMix64(6)
	for j := 0; j < 32; j++ {
		y.Add(rng.Next()%(1<<40), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := x.Merge(y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkL0SamplerAdd(b *testing.B) {
	s := NewL0Sampler(7, 1<<40, 4)
	rng := hashing.NewSplitMix64(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Next()%(1<<40), 1)
	}
}

func BenchmarkL0SamplerSample(b *testing.B) {
	s := NewL0Sampler(9, 1<<40, 4)
	rng := hashing.NewSplitMix64(10)
	for j := 0; j < 1000; j++ {
		s.Add(rng.Next()%(1<<40), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := s.Sample(); !ok {
			b.Fatal("sample failed")
		}
	}
}

func BenchmarkF0Add(b *testing.B) {
	f := NewF0(11, 1<<40)
	rng := hashing.NewSplitMix64(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(rng.Next()%(1<<40), 1)
	}
}

func BenchmarkCountSketchAdd(b *testing.B) {
	cs := NewCountSketch(13, 32)
	rng := hashing.NewSplitMix64(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Add(rng.Next()%(1<<40), 1)
	}
}

func BenchmarkCountSketchQuery(b *testing.B) {
	cs := NewCountSketch(15, 32)
	rng := hashing.NewSplitMix64(16)
	keys := make([]uint64, 32)
	for j := range keys {
		keys[j] = rng.Next() % (1 << 40)
		cs.Add(keys[j], int64(j+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Query(keys[i%len(keys)])
	}
}

func BenchmarkKeyedEdgeSketchAdd(b *testing.B) {
	t := NewKeyedEdgeSketch(17, 1024, 64)
	rng := hashing.NewSplitMix64(18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Add(rng.Intn(1024), rng.Intn(1024), 1)
	}
}

func BenchmarkMarshalRoundTrip(b *testing.B) {
	s := NewSketchB(19, 64)
	rng := hashing.NewSplitMix64(20)
	for j := 0; j < 64; j++ {
		s.Add(rng.Next()%(1<<40), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := s.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var back SketchB
		if err := back.UnmarshalBinary(enc); err != nil {
			b.Fatal(err)
		}
	}
}
