package sketch

import (
	"testing"

	"dynstream/internal/hashing"
)

func TestKeyedEmpty(t *testing.T) {
	k := NewKeyedEdgeSketch(1, 100, 8)
	if _, ok := k.DecodeKey(5); ok {
		t.Error("empty table decoded a key")
	}
}

func TestKeyedSingleEdgePerKey(t *testing.T) {
	const n = 200
	k := NewKeyedEdgeSketch(2, n, 32)
	// 20 outside keys, each with exactly one inside edge.
	for v := 0; v < 20; v++ {
		k.Add(100+v, v, 1)
	}
	for v := 0; v < 20; v++ {
		w, ok := k.DecodeKey(v)
		if !ok {
			t.Errorf("key %d failed to decode", v)
			continue
		}
		if w != 100+v {
			t.Errorf("key %d: got inside endpoint %d, want %d", v, w, 100+v)
		}
	}
}

func TestKeyedAbsentKey(t *testing.T) {
	const n = 100
	k := NewKeyedEdgeSketch(3, n, 16)
	for v := 0; v < 10; v++ {
		k.Add(50+v, v, 1)
	}
	misses := 0
	for v := 20; v < 40; v++ {
		if _, ok := k.DecodeKey(v); ok {
			misses++
		}
	}
	if misses > 0 {
		t.Errorf("%d absent keys spuriously decoded", misses)
	}
}

func TestKeyedDeletion(t *testing.T) {
	const n = 100
	k := NewKeyedEdgeSketch(4, n, 16)
	k.Add(10, 1, 1)
	k.Add(11, 1, 1)
	// Key 1 has two edges: one-sparse recovery must fail...
	if _, ok := k.DecodeKey(1); ok {
		t.Error("two-edge key decoded as one-sparse")
	}
	// ...until one is deleted.
	k.Add(11, 1, -1)
	w, ok := k.DecodeKey(1)
	if !ok || w != 10 {
		t.Errorf("after deletion: (%d,%v), want (10,true)", w, ok)
	}
}

func TestKeyedMultiplicity(t *testing.T) {
	const n = 100
	k := NewKeyedEdgeSketch(5, n, 16)
	k.Add(10, 2, 3) // multigraph: multiplicity 3, still one distinct edge
	w, ok := k.DecodeKey(2)
	if !ok || w != 10 {
		t.Errorf("multiplicity edge: (%d,%v), want (10,true)", w, ok)
	}
}

func TestKeyedManyKeysWithinCapacity(t *testing.T) {
	const n = 1000
	const keys = 50
	decodedTotal := 0
	for trial := uint64(0); trial < 10; trial++ {
		k := NewKeyedEdgeSketch(hashing.Mix(6, trial), n, keys)
		for v := 0; v < keys; v++ {
			k.Add(500+v, v, 1)
		}
		for v := 0; v < keys; v++ {
			if w, ok := k.DecodeKey(v); ok && w == 500+v {
				decodedTotal++
			}
		}
	}
	// Each key succeeds unless all 3 of its buckets collide with other
	// keys; at 2x capacity that is rare but not impossible. Demand 95%.
	if decodedTotal < 10*keys*95/100 {
		t.Errorf("decoded %d/%d key-edge pairs", decodedTotal, 10*keys)
	}
}

func TestKeyedSpaceWords(t *testing.T) {
	small := NewKeyedEdgeSketch(7, 100, 8)
	large := NewKeyedEdgeSketch(7, 100, 80)
	if small.SpaceWords() <= 0 || large.SpaceWords() <= small.SpaceWords() {
		t.Error("space accounting wrong")
	}
}
