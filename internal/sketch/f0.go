package sketch

import (
	"math"

	"dynstream/internal/field"
	"dynstream/internal/hashing"
)

// F0 estimates the number of distinct keys with nonzero net weight in a
// dynamic (insert/delete) stream — the paper's Theorem 9 primitive
// [KNW10]. The paper uses it solely as a decodability guard for
// SKETCH_B: "declare the sketch not decodable when the number of
// distinct elements is estimated to be above 2B".
//
// Implementation: geometric level sampling. Level j holds K fingerprint
// buckets over the keys sampled at rate 2^-j; a bucket is empty iff its
// fingerprint accumulator is zero (whp — a random linear combination of
// the net weights). At the level where occupancy is moderate, linear
// counting (−K·ln(empty fraction)·2^j) estimates F0 within a constant
// factor, which is all the guard needs.
type F0 struct {
	seed      uint64 // retained for serialization (hashes re-derive from it)
	levels    int
	buckets   int
	acc       [][]uint64 // acc[j][b]: field accumulator
	levelHash *hashing.Poly
	bucketFns []*hashing.Poly
	coeffFns  []*hashing.Poly
	// bank interleaves (bucketFns[j], coeffFns[j]) pairs, level-major,
	// so Add evaluates the 2×(level+1) hashes of one update in a single
	// Horner sweep.
	bank    *hashing.PolyBank
	scratch []uint64
}

// NewF0 creates an estimator for keys drawn from a universe of size at
// most universe (used to bound the number of levels).
func NewF0(seed uint64, universe uint64) *F0 {
	levels := 1
	for u := universe; u > 1; u >>= 1 {
		levels++
	}
	return newF0Geom(seed, levels)
}

// newF0Geom builds the estimator from its raw geometry — the
// deserialization entry point (levels is derived from the universe in
// NewF0 and carried on the wire).
func newF0Geom(seed uint64, levels int) *F0 {
	const buckets = 32
	f := &F0{
		seed:      seed,
		levels:    levels,
		buckets:   buckets,
		acc:       make([][]uint64, levels),
		levelHash: hashing.NewPoly(hashing.Mix(seed, 0xf0), 8),
		bucketFns: make([]*hashing.Poly, levels),
		coeffFns:  make([]*hashing.Poly, levels),
	}
	for j := 0; j < levels; j++ {
		f.acc[j] = make([]uint64, buckets)
		f.bucketFns[j] = hashing.NewPoly(hashing.Mix(seed, 0xb0, uint64(j)), 6)
		f.coeffFns[j] = hashing.NewPoly(hashing.Mix(seed, 0xc0, uint64(j)), 6)
	}
	lanes := make([]*hashing.Poly, 0, 2*levels)
	for j := 0; j < levels; j++ {
		lanes = append(lanes, f.bucketFns[j], f.coeffFns[j])
	}
	f.bank = hashing.NewPolyBank(lanes...)
	f.scratch = make([]uint64, 2*levels)
	return f
}

// Add folds x[key] += delta into the estimator. The bucket and
// coefficient hashes of every surviving level come from one banked
// Horner sweep, bit-identical to the per-Poly evaluation.
func (f *F0) Add(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	lv := f.levelHash.Level(key)
	if lv >= f.levels {
		lv = f.levels - 1
	}
	d := field.FromInt64(delta)
	if f.bank != nil {
		hs := f.scratch[:2*(lv+1)]
		f.bank.HashPrefix(key, hs)
		for j := 0; j <= lv; j++ {
			b := int(hs[2*j] % uint64(f.buckets))
			f.acc[j][b] = field.Add(f.acc[j][b], field.Mul(d, hs[2*j+1]))
		}
		return
	}
	for j := 0; j <= lv; j++ {
		b := f.bucketFns[j].Bucket(key, f.buckets)
		coeff := f.coeffFns[j].Hash(key)
		f.acc[j][b] = field.Add(f.acc[j][b], field.Mul(d, coeff))
	}
}

// AddBatch folds a batch of updates; bit-identical to calling Add per
// element. keys and deltas must have equal length. (F0 has no
// fingerprint powers to amortize — its per-update cost is the level
// hash plus one bucket/coefficient hash per surviving level — but the
// batched entry point keeps the ingest stack uniform.)
func (f *F0) AddBatch(keys []uint64, deltas []int64) {
	for i, key := range keys {
		f.Add(key, deltas[i])
	}
}

// IsZero reports whether every accumulator is zero — the state of a
// fresh estimator, which is what lets compressed encodings suppress it.
func (f *F0) IsZero() bool {
	for j := range f.acc {
		if !field.AllZero(f.acc[j]) {
			return false
		}
	}
	return true
}

// Merge adds another estimator built with the same seed.
func (f *F0) Merge(o *F0) {
	for j := range f.acc {
		field.AddVec(f.acc[j], f.acc[j], o.acc[j])
	}
}

// Sub subtracts another estimator built with the same seed.
func (f *F0) Sub(o *F0) {
	for j := range f.acc {
		field.SubVec(f.acc[j], f.acc[j], o.acc[j])
	}
}

func (f *F0) occupied(j int) int {
	n := 0
	for _, v := range f.acc[j] {
		if v != 0 {
			n++
		}
	}
	return n
}

// Estimate returns an estimate of the number of distinct keys with
// nonzero net weight, within a constant factor whp.
func (f *F0) Estimate() float64 {
	k := float64(f.buckets)
	// Use the densest level that is still below the linear-counting
	// saturation band: occupancy there is large enough for a reliable
	// estimate (sparser levels have O(1) survivors and huge variance).
	for j := 0; j < f.levels; j++ {
		occ := float64(f.occupied(j))
		if occ > 0.7*k {
			continue // saturated, go sparser
		}
		if occ == 0 {
			if j == 0 {
				return 0
			}
			// Previous level was saturated yet this one is empty — a
			// low-probability sampling fluke. Report a conservative
			// estimate from the saturated level below.
			return 0.7 * k * math.Pow(2, float64(j-1))
		}
		return -k * math.Log(1-occ/k) * math.Pow(2, float64(j))
	}
	// Every level saturated: the support is enormous.
	return 8 * k * math.Pow(2, float64(f.levels))
}

// ExceedsThreshold reports whether the estimated support is above t.
// This is the decodability guard used in front of SKETCH_B decoding.
func (f *F0) ExceedsThreshold(t int) bool {
	return f.Estimate() > float64(t)
}

// SpaceWords returns the memory footprint in 64-bit words.
func (f *F0) SpaceWords() int {
	return f.levels*f.buckets + 4
}
