package sketch

import (
	"errors"
	"sort"

	"dynstream/internal/field"
	"dynstream/internal/hashing"
)

// errIncompatible is returned when merging sketches built with
// different seeds or geometries.
var errIncompatible = errors.New("sketch: merging incompatible sketches")

// CountSketch is the alternative sparse-recovery backend the paper
// mentions after Theorem 8: "we could also use other sketches, such as
// CountSketch instead of Theorem 8, improving upon the logarithmic
// factors in the space, though the reconstruction time will be larger."
//
// Layout: rows × cols counters; key k lands in bucket h_r(k) of each
// row with sign s_r(k) ∈ {±1}. Point queries median the signed
// counters. Recovery of a B-sparse signal enumerates a candidate key
// set (here: keys verified by a parallel fingerprint row) and point-
// queries each — reconstruction is heavier than IBLT peeling, matching
// the paper's remark, while the counter array itself is leaner.
//
// Like every structure in this package it is a linear function of the
// input vector: Add/Merge/Sub compose.
type CountSketch struct {
	rows int
	cols int
	data []int64 // rows*cols signed counters
	hash []*hashing.Poly
	sign []*hashing.Poly
	// bank interleaves the bucket and sign hashes (hash rows first,
	// then sign rows) so Add evaluates all 2×rows hashes of one update
	// in a single Horner sweep.
	bank *hashing.PolyBank
	// aux enumerates candidate keys for Decode; every candidate is
	// then point-queried against the counter array.
	aux  *SketchB
	seed uint64
}

// NewCountSketch creates a CountSketch able to point-query and decode
// signals of sparsity about `capacity`.
func NewCountSketch(seed uint64, capacity int) *CountSketch {
	if capacity < 1 {
		capacity = 1
	}
	const rows = 5
	cols := 3 * capacity
	if cols < 8 {
		cols = 8
	}
	cs := &CountSketch{
		rows: rows,
		cols: cols,
		data: make([]int64, rows*cols),
		hash: make([]*hashing.Poly, rows),
		sign: make([]*hashing.Poly, rows),
		aux:  NewSketchB(hashing.Mix(seed, 0xa1), capacity),
		seed: seed,
	}
	for r := 0; r < rows; r++ {
		cs.hash[r] = hashing.NewPoly(hashing.Mix(seed, 0x40, uint64(r)), 6)
		cs.sign[r] = hashing.NewPoly(hashing.Mix(seed, 0x50, uint64(r)), 6)
	}
	lanes := make([]*hashing.Poly, 0, 2*rows)
	lanes = append(lanes, cs.hash...)
	lanes = append(lanes, cs.sign...)
	cs.bank = hashing.NewPolyBank(lanes...)
	return cs
}

func (cs *CountSketch) signOf(r int, key uint64) int64 {
	if cs.sign[r].Hash(key)&1 == 0 {
		return -1
	}
	return 1
}

// Add folds x[key] += delta. The bucket and sign hashes of every row
// come from one banked Horner sweep, bit-identical to per-row Hash.
func (cs *CountSketch) Add(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	if cs.bank != nil && 2*cs.rows <= 2*maxBankRows {
		var hbuf [2 * maxBankRows]uint64
		hs := hbuf[:2*cs.rows]
		cs.bank.HashPrefix(key, hs)
		cols := uint64(cs.cols)
		for r := 0; r < cs.rows; r++ {
			idx := r*cs.cols + int(hs[r]%cols)
			sgn := int64(1)
			if hs[cs.rows+r]&1 == 0 {
				sgn = -1
			}
			cs.data[idx] += sgn * delta
		}
	} else {
		for r := 0; r < cs.rows; r++ {
			idx := r*cs.cols + cs.hash[r].Bucket(key, cs.cols)
			cs.data[idx] += cs.signOf(r, key) * delta
		}
	}
	cs.aux.Add(key, delta)
}

// AddBatch folds a batch of updates; bit-identical to calling Add per
// element. keys and deltas must have equal length.
func (cs *CountSketch) AddBatch(keys []uint64, deltas []int64) {
	for i, key := range keys {
		if deltas[i] == 0 {
			continue
		}
		if cs.bank != nil && 2*cs.rows <= 2*maxBankRows {
			var hbuf [2 * maxBankRows]uint64
			hs := hbuf[:2*cs.rows]
			cs.bank.HashPrefix(key, hs)
			cols := uint64(cs.cols)
			for r := 0; r < cs.rows; r++ {
				idx := r*cs.cols + int(hs[r]%cols)
				sgn := int64(1)
				if hs[cs.rows+r]&1 == 0 {
					sgn = -1
				}
				cs.data[idx] += sgn * deltas[i]
			}
		} else {
			for r := 0; r < cs.rows; r++ {
				idx := r*cs.cols + cs.hash[r].Bucket(key, cs.cols)
				cs.data[idx] += cs.signOf(r, key) * deltas[i]
			}
		}
	}
	// The fingerprinted enumerator batches its own fingerprint powers.
	cs.aux.AddBatch(keys, deltas)
}

// Merge adds a compatible CountSketch (same seed/geometry).
func (cs *CountSketch) Merge(o *CountSketch) error {
	if cs.seed != o.seed || cs.rows != o.rows || cs.cols != o.cols {
		return errIncompatible
	}
	field.AddI64Vec(cs.data, o.data)
	return cs.aux.Merge(o.aux)
}

// Sub subtracts a compatible CountSketch.
func (cs *CountSketch) Sub(o *CountSketch) error {
	if cs.seed != o.seed || cs.rows != o.rows || cs.cols != o.cols {
		return errIncompatible
	}
	field.SubI64Vec(cs.data, o.data)
	return cs.aux.Sub(o.aux)
}

// Query estimates x[key] as the median of its signed counters. The
// classical CountSketch guarantee applies: the error is bounded by the
// tail norm over colliding keys, so for B-sparse signals within
// capacity most queries are exact and every query is within the noise
// of the few keys sharing buckets (~5%% of queries at the 3B-column
// geometry see any error at all).
func (cs *CountSketch) Query(key uint64) int64 {
	ests := make([]int64, cs.rows)
	for r := 0; r < cs.rows; r++ {
		idx := r*cs.cols + cs.hash[r].Bucket(key, cs.cols)
		ests[r] = cs.signOf(r, key) * cs.data[idx]
	}
	sort.Slice(ests, func(i, j int) bool { return ests[i] < ests[j] })
	return ests[cs.rows/2]
}

// Decode recovers the sketched vector: candidate keys are enumerated
// by the fingerprinted auxiliary structure, then every candidate is
// point-queried against the counter array and kept only if the two
// agree (the "larger reconstruction time" of the paper's remark: an
// extra verification pass per key).
func (cs *CountSketch) Decode() (map[uint64]int64, bool) {
	cands, ok := cs.aux.Decode()
	if !ok {
		return nil, false
	}
	out := make(map[uint64]int64, len(cands))
	disagree := 0
	for key, w := range cands {
		if cs.Query(key) != w {
			// A median point query is only whp-exact per key, so a few
			// disagreements are expected noise; systematic disagreement
			// means the enumerator decoded garbage.
			disagree++
		}
		if w != 0 {
			out[key] = w
		}
	}
	if len(cands) > 0 && disagree*10 > len(cands) {
		return nil, false
	}
	return out, true
}

// SpaceWords returns the memory footprint in 64-bit words.
func (cs *CountSketch) SpaceWords() int {
	return len(cs.data) + cs.aux.SpaceWords() + 4
}
