package sketch

import (
	"testing"

	"dynstream/internal/hashing"
)

func TestCountSketchPointQuery(t *testing.T) {
	cs := NewCountSketch(1, 16)
	cs.Add(7, 5)
	cs.Add(90, -3)
	if got := cs.Query(7); got != 5 {
		t.Errorf("Query(7) = %d, want 5", got)
	}
	if got := cs.Query(90); got != -3 {
		t.Errorf("Query(90) = %d, want -3", got)
	}
	if got := cs.Query(12345); got != 0 {
		t.Errorf("Query(absent) = %d, want 0", got)
	}
}

func TestCountSketchPointQueryNoise(t *testing.T) {
	mismatches := 0
	for trial := uint64(0); trial < 20; trial++ {
		cs := NewCountSketch(hashing.Mix(2, trial), 16)
		rng := hashing.NewSplitMix64(trial)
		want := map[uint64]int64{}
		for len(want) < 16 {
			k := rng.Next() % 1000003
			if _, dup := want[k]; dup {
				continue
			}
			want[k] = int64(rng.Intn(19) - 9)
			if want[k] == 0 {
				want[k] = 1
			}
			cs.Add(k, want[k])
		}
		for k, v := range want {
			if got := cs.Query(k); got != v {
				mismatches++
				t.Logf("trial %d: Query(%d)=%d want %d", trial, k, got, v)
			}
		}
	}
	// CountSketch point queries carry tail noise: at the 3B-column
	// geometry ~5%% of queries see a collision-induced error. Assert
	// the noise level, not exactness (Decode gets exactness from the
	// fingerprint enumerator, tested separately).
	if mismatches > 32 { // 10% of 320
		t.Errorf("%d/320 point queries wrong — beyond tail noise", mismatches)
	}
}

func TestCountSketchDecode(t *testing.T) {
	cs := NewCountSketch(3, 12)
	want := map[uint64]int64{10: 1, 20: 2, 30: -4, 99999: 7}
	for k, v := range want {
		cs.Add(k, v)
	}
	got, ok := cs.Decode()
	if !ok {
		t.Fatal("decode failed")
	}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %d: %d want %d", k, got[k], v)
		}
	}
}

func TestCountSketchDeletions(t *testing.T) {
	cs := NewCountSketch(4, 8)
	for k := uint64(0); k < 100; k++ {
		cs.Add(k, 1)
	}
	for k := uint64(0); k < 98; k++ {
		cs.Add(k, -1)
	}
	got, ok := cs.Decode()
	if !ok {
		t.Fatal("decode failed after deletions")
	}
	if len(got) != 2 || got[98] != 1 || got[99] != 1 {
		t.Errorf("got %v", got)
	}
}

func TestCountSketchMergeSub(t *testing.T) {
	a := NewCountSketch(5, 8)
	b := NewCountSketch(5, 8)
	a.Add(1, 3)
	b.Add(2, 4)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Query(1) != 3 || a.Query(2) != 4 {
		t.Error("merge lost data")
	}
	if err := a.Sub(b); err != nil {
		t.Fatal(err)
	}
	if a.Query(2) != 0 {
		t.Error("sub did not cancel")
	}
}

func TestCountSketchIncompatibleMerge(t *testing.T) {
	a := NewCountSketch(6, 8)
	b := NewCountSketch(7, 8)
	if err := a.Merge(b); err == nil {
		t.Error("different seeds merged")
	}
}

func TestCountSketchOverloadFailsCleanly(t *testing.T) {
	cs := NewCountSketch(8, 4)
	for k := uint64(0); k < 400; k++ {
		cs.Add(k, 1)
	}
	if _, ok := cs.Decode(); ok {
		t.Error("overloaded CountSketch claimed success")
	}
}

func TestCountSketchSpaceScales(t *testing.T) {
	small := NewCountSketch(9, 8)
	large := NewCountSketch(9, 80)
	if small.SpaceWords() <= 0 || large.SpaceWords() <= small.SpaceWords() {
		t.Error("space accounting wrong")
	}
	// Counters are 1 word each (vs 3 per IBLT cell): the counter array
	// must be the structure's lighter half at equal capacity.
	cs := NewCountSketch(9, 64)
	if cs.rows*cs.cols >= 3*cs.rows*cs.cols {
		t.Error("unreachable") // documents the 1-vs-3 word layout
	}
}
