package sketch

import (
	"fmt"

	"dynstream/internal/field"
	"dynstream/internal/hashing"
)

// SketchB is the paper's SKETCH_B primitive (Theorem 8): a randomized
// linear projection of a signed integer vector x from which x can be
// recovered exactly whenever ||x||_0 <= B, with failure probability
// 1/poly(n). It is implemented as an invertible Bloom lookup table:
// rows × cols one-sparse cells, each key hashed to one cell per row,
// decoded by peeling pure cells. The structure is linear, so sketches
// can be merged (summing vectors) and subtracted — the operations
// Algorithms 1–3 rely on.
type SketchB struct {
	seed     uint64
	capacity int
	rows     int
	cols     int
	cells    []Cell
	hashes   []*hashing.Poly
	fingBase uint64
	fingHash *hashing.Poly // caches nothing; base only
}

// SketchConfig tunes the redundancy of sparse recovery. Zero values take
// defaults suitable for whp recovery at small polynomial scale.
type SketchConfig struct {
	// Rows is the number of hash rows (default 3).
	Rows int
	// ColsPerItem scales cells per row relative to capacity
	// (default 1.5). Total cells = Rows * max(MinCols, ColsPerItem*B).
	ColsPerItem float64
	// MinCols floors the row width (default 4).
	MinCols int
}

func (c SketchConfig) withDefaults() SketchConfig {
	if c.Rows == 0 {
		c.Rows = 3
	}
	if c.ColsPerItem == 0 {
		c.ColsPerItem = 1.5
	}
	if c.MinCols == 0 {
		c.MinCols = 4
	}
	return c
}

// NewSketchB creates a sparse-recovery sketch for signals with support
// size up to capacity, with default redundancy.
func NewSketchB(seed uint64, capacity int) *SketchB {
	return NewSketchBConfig(seed, capacity, SketchConfig{})
}

// NewSketchBConfig creates a sparse-recovery sketch with explicit
// redundancy parameters.
func NewSketchBConfig(seed uint64, capacity int, cfg SketchConfig) *SketchB {
	cfg = cfg.withDefaults()
	if capacity < 1 {
		capacity = 1
	}
	cols := int(cfg.ColsPerItem * float64(capacity))
	if cols < cfg.MinCols {
		cols = cfg.MinCols
	}
	s := &SketchB{
		seed:     seed,
		capacity: capacity,
		rows:     cfg.Rows,
		cols:     cols,
		cells:    make([]Cell, cfg.Rows*cols),
		hashes:   make([]*hashing.Poly, cfg.Rows),
		fingBase: field.Reduce(hashing.Mix(seed, 0xf1f1)),
	}
	if s.fingBase < 2 {
		s.fingBase = 2
	}
	for r := 0; r < cfg.Rows; r++ {
		s.hashes[r] = hashing.NewPoly(hashing.Mix(seed, uint64(r)+1), 6)
	}
	return s
}

// Capacity returns the sparsity budget B the sketch was built for.
func (s *SketchB) Capacity() int { return s.capacity }

// Seed returns the randomness seed; two sketches are mergeable iff their
// seeds (and geometry) match.
func (s *SketchB) Seed() uint64 { return s.seed }

// Add folds a stream update x[key] += delta into the sketch.
func (s *SketchB) Add(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	fkey := field.Pow(s.fingBase, field.Reduce(key))
	for r := 0; r < s.rows; r++ {
		idx := r*s.cols + s.hashes[r].Bucket(key, s.cols)
		s.cells[idx].Update(key, delta, fkey)
	}
}

func (s *SketchB) compatible(o *SketchB) error {
	if s.seed != o.seed || s.rows != o.rows || s.cols != o.cols {
		return fmt.Errorf("sketch: merging incompatible sketches (seed %d/%d, %dx%d vs %dx%d)",
			s.seed, o.seed, s.rows, s.cols, o.rows, o.cols)
	}
	return nil
}

// Merge adds another sketch built with the same seed and geometry; the
// result sketches the sum of the two underlying vectors.
func (s *SketchB) Merge(o *SketchB) error {
	if err := s.compatible(o); err != nil {
		return err
	}
	for i := range s.cells {
		s.cells[i].Merge(o.cells[i])
	}
	return nil
}

// Sub subtracts another compatible sketch.
func (s *SketchB) Sub(o *SketchB) error {
	if err := s.compatible(o); err != nil {
		return err
	}
	for i := range s.cells {
		s.cells[i].Sub(o.cells[i])
	}
	return nil
}

// Clone returns a deep copy.
func (s *SketchB) Clone() *SketchB {
	c := *s
	c.cells = make([]Cell, len(s.cells))
	copy(c.cells, s.cells)
	return &c
}

// IsZero reports whether the sketch is (whp) of the zero vector.
func (s *SketchB) IsZero() bool {
	for i := range s.cells {
		if !s.cells[i].IsZero() {
			return false
		}
	}
	return true
}

// Decode recovers the sketched vector by peeling. It returns the map of
// nonzero coordinates and ok=true iff every cell was consumed, i.e. the
// recovery is (whp) exact. Decoding a zero vector returns an empty map
// and ok=true. Decode does not mutate the sketch.
func (s *SketchB) Decode() (map[uint64]int64, bool) {
	work := s.Clone()
	out := make(map[uint64]int64)
	// Peel: repeatedly find a pure cell, extract its item, remove the
	// item from all rows, until no progress.
	for {
		progress := false
		for i := range work.cells {
			key, w, ok := work.cells[i].Decode(work.fingBase)
			if !ok {
				continue
			}
			fkey := field.Pow(work.fingBase, field.Reduce(key))
			for r := 0; r < work.rows; r++ {
				idx := r*work.cols + work.hashes[r].Bucket(key, work.cols)
				work.cells[idx].Update(key, -w, fkey)
			}
			out[key] += w
			if out[key] == 0 {
				delete(out, key)
			}
			progress = true
		}
		if !progress {
			break
		}
	}
	return out, work.IsZero()
}

// SpaceWords returns the memory footprint in 64-bit words, used by the
// space-accounting experiments (E3).
func (s *SketchB) SpaceWords() int {
	return 3*len(s.cells) + 4 // 3 words per cell + seed/geometry
}
