package sketch

import (
	"fmt"

	"dynstream/internal/field"
	"dynstream/internal/hashing"
)

// sketchBShape is the immutable-after-derivation, shareable part of a
// SketchB: seed, geometry, row hash functions, and the fingerprint
// base with its power table. Sketches built from the same randomness
// (e.g. the per-vertex sketches of one AGM round) share one shape, so
// constructing n sketches costs n slice allocations instead of
// n×(hashes + power table) objects.
type sketchBShape struct {
	seed     uint64
	capacity int
	rows     int
	cols     int
	hashes   []*hashing.Poly
	bank     *hashing.PolyBank // all row hashes, one interleaved Horner sweep
	fingBase uint64
	fingTab  *field.PowTable // lazy; access via tab()
}

// tab returns the fingerprint power table, building it on first use.
// Laziness keeps constructors of rarely-touched sketches (e.g. the
// additive spanner's per-vertex center sketches) from paying the ~256
// Muls of table setup up front. Materialization follows the same
// confinement rule as cell mutation: a sketch (and the shape it owns
// or shares) belongs to one goroutine until its state is handed off.
func (sh *sketchBShape) tab() *field.PowTable {
	if sh.fingTab == nil {
		sh.fingTab = field.NewPowTable(sh.fingBase)
	}
	return sh.fingTab
}

// newSketchBShape derives the shape exactly as NewSketchBConfig always
// did, so sketches over a shared shape are bit-identical to sketches
// built standalone from the same seed.
func newSketchBShape(seed uint64, capacity int, cfg SketchConfig) *sketchBShape {
	cfg = cfg.withDefaults()
	if capacity < 1 {
		capacity = 1
	}
	cols := int(cfg.ColsPerItem * float64(capacity))
	if cols < cfg.MinCols {
		cols = cfg.MinCols
	}
	sh := &sketchBShape{
		seed:     seed,
		capacity: capacity,
		rows:     cfg.Rows,
		cols:     cols,
		hashes:   make([]*hashing.Poly, cfg.Rows),
		fingBase: field.Reduce(hashing.Mix(seed, 0xf1f1)),
	}
	if sh.fingBase < 2 {
		sh.fingBase = 2
	}
	for r := 0; r < cfg.Rows; r++ {
		sh.hashes[r] = hashing.NewPoly(hashing.Mix(seed, uint64(r)+1), 6)
	}
	sh.bank = hashing.NewPolyBank(sh.hashes...)
	return sh
}

// maxBankRows bounds the stack scratch used for banked row hashes; the
// wire format already rejects rows > 16.
const maxBankRows = 16

func (sh *sketchBShape) cells() int { return sh.rows * sh.cols }

// SketchB is the paper's SKETCH_B primitive (Theorem 8): a randomized
// linear projection of a signed integer vector x from which x can be
// recovered exactly whenever ||x||_0 <= B, with failure probability
// 1/poly(n). It is implemented as an invertible Bloom lookup table:
// rows × cols one-sparse cells, each key hashed to one cell per row,
// decoded by peeling pure cells. The structure is linear, so sketches
// can be merged (summing vectors) and subtracted — the operations
// Algorithms 1–3 rely on.
//
// Cell state is stored structure-of-arrays (counts / keySums / fings as
// three flat slices) so that ingest and merge sweep contiguous memory,
// and so that families of sketches can slice their state out of one
// backing allocation.
type SketchB struct {
	shape   *sketchBShape
	counts  []int64
	keySums []uint64
	fings   []uint64
	gen     uint64
}

// Gen returns the sketch's generation counter: a monotonic count of
// state mutations (Add/AddBatch/Merge/Sub/SetTo and deserialization).
// Decode-side caches key reuse on it — equal generation sums over a
// fixed sketch set imply the states are unchanged, with no collision
// risk, because generations only grow.
func (s *SketchB) Gen() uint64 { return s.gen }

// SketchConfig tunes the redundancy of sparse recovery. Zero values take
// defaults suitable for whp recovery at small polynomial scale.
type SketchConfig struct {
	// Rows is the number of hash rows (default 3).
	Rows int
	// ColsPerItem scales cells per row relative to capacity
	// (default 1.5). Total cells = Rows * max(MinCols, ColsPerItem*B).
	ColsPerItem float64
	// MinCols floors the row width (default 4).
	MinCols int
}

func (c SketchConfig) withDefaults() SketchConfig {
	if c.Rows == 0 {
		c.Rows = 3
	}
	if c.ColsPerItem == 0 {
		c.ColsPerItem = 1.5
	}
	if c.MinCols == 0 {
		c.MinCols = 4
	}
	return c
}

// NewSketchB creates a sparse-recovery sketch for signals with support
// size up to capacity, with default redundancy.
func NewSketchB(seed uint64, capacity int) *SketchB {
	return NewSketchBConfig(seed, capacity, SketchConfig{})
}

// NewSketchBConfig creates a sparse-recovery sketch with explicit
// redundancy parameters.
func NewSketchBConfig(seed uint64, capacity int, cfg SketchConfig) *SketchB {
	return newSketchBShape(seed, capacity, cfg).instance()
}

// SketchBFamily is the shared immutable part (seed, geometry, hashes,
// fingerprint table) of same-seeded SketchBs. Callers that build many
// sketches from one seed — e.g. the two-pass spanner's per-vertex
// first-pass sketches, which share their randomness per (level, E_j)
// pair — derive the family once and instantiate per vertex, instead of
// re-deriving hashes and tables n times.
type SketchBFamily struct {
	sh *sketchBShape
}

// NewSketchBFamily derives the shared part exactly as NewSketchBConfig
// would, so family instances are bit-identical to standalone sketches
// of the same seed.
func NewSketchBFamily(seed uint64, capacity int, cfg SketchConfig) *SketchBFamily {
	return &SketchBFamily{sh: newSketchBShape(seed, capacity, cfg)}
}

// New returns a zeroed sketch of the family.
func (f *SketchBFamily) New() *SketchB { return f.sh.instance() }

// instance returns a zeroed sketch over the shared shape.
func (sh *sketchBShape) instance() *SketchB {
	n := sh.cells()
	// One backing array for both field lanes: lazy level
	// materialization during ingest allocates thousands of these, and
	// halving the object count halves the GC scan load they add.
	pair := make([]uint64, 2*n)
	return &SketchB{
		shape:   sh,
		counts:  make([]int64, n),
		keySums: pair[:n:n],
		fings:   pair[n:],
	}
}

// Capacity returns the sparsity budget B the sketch was built for.
func (s *SketchB) Capacity() int { return s.shape.capacity }

// Seed returns the randomness seed; two sketches are mergeable iff their
// seeds (and geometry) match.
func (s *SketchB) Seed() uint64 { return s.shape.seed }

// Fkey returns the fingerprint power r^key for this sketch's base,
// computed through the precomputed window table. Callers that fan one
// update out to several same-seeded sketches compute it once and pass
// it to AddFkey.
func (s *SketchB) Fkey(key uint64) uint64 {
	return s.shape.tab().Pow(field.Reduce(key))
}

// Add folds a stream update x[key] += delta into the sketch.
func (s *SketchB) Add(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	s.AddFkey(key, delta, s.Fkey(key))
}

// AddBatch folds a batch of updates; bit-identical to calling Add per
// element. keys and deltas must have equal length. Fingerprint powers
// for the whole batch are evaluated with one shared window traversal
// (field.FingerprintVec) before the per-update cell scatter.
func (s *SketchB) AddBatch(keys []uint64, deltas []int64) {
	if len(keys) == 0 {
		return
	}
	tab := s.shape.tab()
	exps := make([]uint64, len(keys))
	for i, key := range keys {
		exps[i] = field.Reduce(key)
	}
	fkeys := make([]uint64, len(keys))
	tab.FingerprintVec(fkeys, exps)
	for i, key := range keys {
		if deltas[i] == 0 {
			continue
		}
		s.AddFkey(key, deltas[i], fkeys[i])
	}
}

// Fkey2 returns the fingerprint powers of two keys through one shared
// window traversal (field.PowPair) — the two-endpoint form of Fkey
// used when one stream update routes into a pair of same-family
// sketches.
func (s *SketchB) Fkey2(ka, kb uint64) (uint64, uint64) {
	tab := s.shape.tab()
	return field.PowPair(tab, tab, field.Reduce(ka), field.Reduce(kb))
}

// AddFkey is Add with the fingerprint power precomputed (fkey must
// equal r^key for this sketch's base). All row hashes are evaluated in
// one interleaved Horner sweep over the shape's bank.
func (s *SketchB) AddFkey(key uint64, delta int64, fkey uint64) {
	if delta == 0 {
		return
	}
	s.gen++
	d := field.FromInt64(delta)
	ks := field.Mul(d, field.Reduce(key))
	fg := field.Mul(d, fkey)
	sh := s.shape
	if sh.bank != nil && sh.rows <= maxBankRows {
		var hbuf [maxBankRows]uint64
		var ibuf [maxBankRows]int32
		hs := hbuf[:sh.rows]
		sh.bank.HashPrefix(key, hs)
		cols := uint64(sh.cols)
		idx := ibuf[:sh.rows]
		for r := 0; r < sh.rows; r++ {
			idx[r] = int32(r*sh.cols + int(hs[r]%cols))
		}
		field.ScatterAdd3(s.counts, s.keySums, s.fings, delta, ks, fg, idx)
		return
	}
	for r := 0; r < sh.rows; r++ {
		idx := r*sh.cols + sh.hashes[r].Bucket(key, sh.cols)
		s.counts[idx] += delta
		s.keySums[idx] = field.Add(s.keySums[idx], ks)
		s.fings[idx] = field.Add(s.fings[idx], fg)
	}
}

// addRouted folds one update whose field values (d·key, d·fkey) and
// per-row cell indices are already computed — the hint path of L0
// families, where one update fans into several samplers and the
// routing is shared across them and across levels.
func (s *SketchB) addRouted(delta int64, ks, fg uint64, idx []int32) {
	s.gen++
	field.ScatterAdd3(s.counts, s.keySums, s.fings, delta, ks, fg, idx)
}

func (s *SketchB) compatible(o *SketchB) error {
	if s.shape.seed != o.shape.seed || s.shape.rows != o.shape.rows || s.shape.cols != o.shape.cols {
		return fmt.Errorf("sketch: merging incompatible sketches (seed %d/%d, %dx%d vs %dx%d)",
			s.shape.seed, o.shape.seed, s.shape.rows, s.shape.cols, o.shape.rows, o.shape.cols)
	}
	return nil
}

// Merge adds another sketch built with the same seed and geometry; the
// result sketches the sum of the two underlying vectors. The three SoA
// lanes fold in one kernel pass (field.MergeCells).
func (s *SketchB) Merge(o *SketchB) error {
	if err := s.compatible(o); err != nil {
		return err
	}
	s.gen++
	field.MergeCells(s.counts, s.keySums, s.fings, o.counts, o.keySums, o.fings)
	return nil
}

// Sub subtracts another compatible sketch.
func (s *SketchB) Sub(o *SketchB) error {
	if err := s.compatible(o); err != nil {
		return err
	}
	s.gen++
	field.SubCells(s.counts, s.keySums, s.fings, o.counts, o.keySums, o.fings)
	return nil
}

// Clone returns a deep copy (the immutable shape is shared).
func (s *SketchB) Clone() *SketchB {
	c := s.shape.instance()
	copy(c.counts, s.counts)
	copy(c.keySums, s.keySums)
	copy(c.fings, s.fings)
	return c
}

// SetTo makes s an exact copy of o — o's shape, o's cell state —
// reusing s's cell slices when the geometry matches. It is the
// scratch-reuse primitive of the parallel decode engine: a per-worker
// scratch sketch is SetTo a component's base sketch, merged, and
// decoded, round after round, without allocating a fresh Clone each
// time.
func (s *SketchB) SetTo(o *SketchB) {
	s.gen++
	s.shape = o.shape
	if len(s.counts) != len(o.counts) {
		s.counts = make([]int64, len(o.counts))
		s.keySums = make([]uint64, len(o.keySums))
		s.fings = make([]uint64, len(o.fings))
	}
	copy(s.counts, o.counts)
	copy(s.keySums, o.keySums)
	copy(s.fings, o.fings)
}

// Warm materializes the shape's lazy fingerprint power table. Table
// materialization follows the same one-goroutine confinement rule as
// cell mutation, so parallel decoders over sketches sharing a shape
// call Warm once before fanning out.
func (s *SketchB) Warm() { s.shape.tab() }

// IsZero reports whether the sketch is (whp) of the zero vector. Each
// SoA lane is scanned with an early-exit word loop — count lane first,
// since any touched cell has a nonzero count far more often than a
// canceled one — instead of per-cell struct loads.
func (s *SketchB) IsZero() bool {
	return field.AllZeroI64(s.counts) && field.AllZero(s.keySums) && field.AllZero(s.fings)
}

// decodeCell attempts one-sparse recovery of cell i: Cell.DecodeTable
// over the flat layout, powered by the shape's table.
func (s *SketchB) decodeCell(i int) (key uint64, weight int64, ok bool) {
	c := Cell{count: s.counts[i], keySum: s.keySums[i], fing: s.fings[i]}
	return c.DecodeTable(s.shape.tab())
}

// Decode recovers the sketched vector by peeling. It returns the map of
// nonzero coordinates and ok=true iff every cell was consumed, i.e. the
// recovery is (whp) exact. Decoding a zero vector returns an empty map
// and ok=true. Decode does not mutate the sketch.
func (s *SketchB) Decode() (map[uint64]int64, bool) {
	work := s.Clone()
	out := make(map[uint64]int64)
	// Peel: repeatedly find a pure cell, extract its item, remove the
	// item from all rows, until no progress.
	for {
		progress := false
		for i := range work.counts {
			if work.counts[i] == 0 {
				// Cheap count-lane skip: a zero-count cell never decodes
				// (decodeCell rejects it first thing), and most cells of a
				// peeled-down sketch are zero.
				continue
			}
			key, w, ok := work.decodeCell(i)
			if !ok {
				continue
			}
			work.AddFkey(key, -w, work.Fkey(key))
			out[key] += w
			if out[key] == 0 {
				delete(out, key)
			}
			progress = true
		}
		if !progress {
			break
		}
	}
	return out, work.IsZero()
}

// SpaceWords returns the memory footprint in 64-bit words, used by the
// space-accounting experiments (E3).
func (s *SketchB) SpaceWords() int {
	return 3*len(s.counts) + 4 // 3 words per cell + seed/geometry
}
