package sketch

import (
	"fmt"

	"dynstream/internal/field"
	"dynstream/internal/hashing"
)

// KeyedEdgeSketch is the "linear hash table" H^u_j of Algorithm 2. For a
// terminal cluster T_u it ingests stream updates for edges (w, v) with
// w ∈ T_u ∩ Y_j and v ∉ T_u, keyed by the outside endpoint v, and
// supports the query: "give me one edge from v into T_u". The paper
// implements it as a table with Õ(n^{(i+1)/k}) cells, each holding a
// polylog-bit sketch of N(v) ∩ T_u ∩ Y_j; decodability of the whole
// table is guaranteed because a terminal node has |N(T_u)| =
// O(n^{(i+1)/k} log n) distinct outside neighbors (Claim 11).
//
// Implementation: rows × cells buckets, each accumulating, over the
// edge updates routed to it by hashing the key v,
//
//	edgeCount = Σ δ
//	keySum    = Σ δ·v,     keyFing  = Σ δ·r1^v      (field)
//	edgeSum   = Σ δ·e,     edgeFing = Σ δ·r2^e      (field)
//
// where e encodes the ordered pair (w, v). Because every edge of a key
// hashes to the same bucket per row, a key-pure bucket (detected by the
// fingerprint test) holds that key's complete aggregate, which can be
// peeled out of the key's buckets in the other rows — exactly the
// sparse-recovery decoding of the paper's hash table. The recovered
// per-key aggregate is a one-sparse edge sketch: at the subsampling
// level Y_j where v has a single surviving neighbor in T_u it decodes
// to a concrete edge, mirroring SKETCH_{O(log n)}(N(v) ∩ T_u ∩ Y_j).
type KeyedEdgeSketch struct {
	seed     uint64
	n        int
	rows     int
	cells    int
	buckets  []keyedBucket
	rowHash  []*hashing.Poly
	keyBase  uint64
	edgeBase uint64
	keyTab   *field.PowTable
	edgeTab  *field.PowTable

	recovered map[uint64]keyedBucket
	dirty     bool
	gen       uint64
}

// Gen returns the table's generation counter: a monotonic count of
// state mutations, the key decode-side caches use to detect that a
// table is unchanged since the cached extraction.
func (t *KeyedEdgeSketch) Gen() uint64 { return t.gen }

// BumpGen forces a generation bump (used by whole-state replacement
// such as deserialization).
func (t *KeyedEdgeSketch) BumpGen() { t.gen++; t.dirty = true }

type keyedBucket struct {
	edgeCount int64
	keySum    uint64
	keyFing   uint64
	edgeSum   uint64
	edgeFing  uint64
}

func (b *keyedBucket) isZero() bool {
	return b.edgeCount == 0 && b.keySum == 0 && b.keyFing == 0 &&
		b.edgeSum == 0 && b.edgeFing == 0
}

// IsZero reports whether the table holds the zero vector's state —
// indistinguishable from a fresh table, which is what lets compressed
// encodings suppress it.
func (t *KeyedEdgeSketch) IsZero() bool {
	for i := range t.buckets {
		if !t.buckets[i].isZero() {
			return false
		}
	}
	return true
}

func (b *keyedBucket) merge(o keyedBucket) {
	b.edgeCount += o.edgeCount
	b.keySum = field.Add(b.keySum, o.keySum)
	b.keyFing = field.Add(b.keyFing, o.keyFing)
	b.edgeSum = field.Add(b.edgeSum, o.edgeSum)
	b.edgeFing = field.Add(b.edgeFing, o.edgeFing)
}

func (b *keyedBucket) sub(o keyedBucket) {
	b.edgeCount -= o.edgeCount
	b.keySum = field.Sub(b.keySum, o.keySum)
	b.keyFing = field.Sub(b.keyFing, o.keyFing)
	b.edgeSum = field.Sub(b.edgeSum, o.edgeSum)
	b.edgeFing = field.Sub(b.edgeFing, o.edgeFing)
}

// pureKey reports whether all mass in the bucket belongs to a single
// key, and returns that key. It is a polynomial-identity fingerprint
// test, sound except with probability ≤ poly(n)/p. keyTab is the power
// table of the sketch's key fingerprint base.
func (b *keyedBucket) pureKey(keyTab *field.PowTable) (key uint64, ok bool) {
	if b.edgeCount == 0 {
		return 0, false
	}
	cf := field.FromInt64(b.edgeCount)
	key = field.Mul(b.keySum, field.Inv(cf))
	if b.keyFing != field.Mul(cf, keyTab.Pow(key)) {
		return 0, false
	}
	return key, true
}

// NewKeyedEdgeSketch creates a table able to serve about `capacity`
// distinct outside keys, over a graph with n vertices.
func NewKeyedEdgeSketch(seed uint64, n, capacity int) *KeyedEdgeSketch {
	const rows = 3
	cells := 2 * capacity
	if cells < 8 {
		cells = 8
	}
	return newKeyedEdgeSketchGeom(seed, n, rows, cells)
}

// newKeyedEdgeSketchGeom builds the table from its raw geometry — the
// deserialization entry point (rows and cells are carried on the wire,
// so a decoded table matches its encoder cell for cell).
func newKeyedEdgeSketchGeom(seed uint64, n, rows, cells int) *KeyedEdgeSketch {
	t := &KeyedEdgeSketch{
		seed:     seed,
		n:        n,
		rows:     rows,
		cells:    cells,
		buckets:  make([]keyedBucket, rows*cells),
		rowHash:  make([]*hashing.Poly, rows),
		keyBase:  field.Reduce(hashing.Mix(seed, 0xaa)),
		edgeBase: field.Reduce(hashing.Mix(seed, 0xbb)),
		dirty:    true,
	}
	if t.keyBase < 2 {
		t.keyBase = 2
	}
	if t.edgeBase < 2 {
		t.edgeBase = 2
	}
	t.keyTab = field.NewPowTable(t.keyBase)
	t.edgeTab = field.NewPowTable(t.edgeBase)
	for r := 0; r < rows; r++ {
		t.rowHash[r] = hashing.NewPoly(hashing.Mix(seed, 0xcc, uint64(r)), 6)
	}
	return t
}

func (t *KeyedEdgeSketch) encode(w, v int) uint64 {
	return uint64(w)*uint64(t.n) + uint64(v)
}

// Add folds an update for edge (w, v) — w inside the cluster, v the
// outside key — with multiplicity delta.
func (t *KeyedEdgeSketch) Add(w, v int, delta int64) {
	if delta == 0 {
		return
	}
	t.dirty = true
	t.gen++
	key := uint64(v)
	e := t.encode(w, v)
	d := field.FromInt64(delta)
	upd := keyedBucket{
		edgeCount: delta,
		keySum:    field.Mul(d, field.Reduce(key)),
		keyFing:   field.Mul(d, t.keyTab.Pow(key)),
		edgeSum:   field.Mul(d, field.Reduce(e)),
		edgeFing:  field.Mul(d, t.edgeTab.Pow(field.Reduce(e))),
	}
	for r := 0; r < t.rows; r++ {
		t.buckets[r*t.cells+t.rowHash[r].Bucket(key, t.cells)].merge(upd)
	}
}

// KeyedEdgeUpdate is one (w, v, delta) edge update for AddBatch.
type KeyedEdgeUpdate struct {
	W, V  int
	Delta int64
}

// AddBatch folds a batch of edge updates; bit-identical to calling Add
// per element.
func (t *KeyedEdgeSketch) AddBatch(batch []KeyedEdgeUpdate) {
	for _, u := range batch {
		t.Add(u.W, u.V, u.Delta)
	}
}

// Merge adds another table built with the same seed and geometry; the
// result is the table of the summed update streams, exactly as if every
// update of o had been Added to t. The linearity is what lets Algorithm
// 2's second pass be ingested in parallel shards.
func (t *KeyedEdgeSketch) Merge(o *KeyedEdgeSketch) error {
	if t.seed != o.seed || t.n != o.n || t.rows != o.rows || t.cells != o.cells {
		return fmt.Errorf("sketch: merging incompatible keyed tables (seed %d/%d, %dx%d vs %dx%d)",
			t.seed, o.seed, t.rows, t.cells, o.rows, o.cells)
	}
	for i := range t.buckets {
		t.buckets[i].merge(o.buckets[i])
	}
	t.dirty = true
	t.gen++
	return nil
}

// peel decodes the whole table: it repeatedly finds a key-pure bucket,
// records that key's aggregate, and subtracts it from the key's buckets
// in every row, until no further progress. Results are cached until the
// next Add.
func (t *KeyedEdgeSketch) peel() {
	if !t.dirty {
		return
	}
	work := make([]keyedBucket, len(t.buckets))
	copy(work, t.buckets)
	t.recovered = make(map[uint64]keyedBucket)
	for {
		progress := false
		for i := range work {
			if work[i].isZero() {
				continue
			}
			key, ok := work[i].pureKey(t.keyTab)
			if !ok {
				continue
			}
			agg := work[i]
			for r := 0; r < t.rows; r++ {
				work[r*t.cells+t.rowHash[r].Bucket(key, t.cells)].sub(agg)
			}
			prev := t.recovered[key]
			prev.merge(agg)
			if prev.isZero() {
				delete(t.recovered, key)
			} else {
				t.recovered[key] = prev
			}
			progress = true
		}
		if !progress {
			break
		}
	}
	t.dirty = false
}

// DecodeKey attempts to recover one edge (w, v) for the outside key v.
// It succeeds when the table peels and v's aggregate contains a single
// net edge — which happens whp at the correct subsampling level Y_j.
func (t *KeyedEdgeSketch) DecodeKey(v int) (w int, ok bool) {
	t.peel()
	b, found := t.recovered[uint64(v)]
	if !found || b.edgeCount == 0 {
		return 0, false
	}
	cf := field.FromInt64(b.edgeCount)
	e := field.Mul(b.edgeSum, field.Inv(cf))
	if b.edgeFing != field.Mul(cf, t.edgeTab.Pow(e)) {
		return 0, false
	}
	wID := int(e / uint64(t.n))
	vID := int(e % uint64(t.n))
	if vID != v || wID < 0 || wID >= t.n {
		return 0, false
	}
	return wID, true
}

// Keys returns the outside keys recovered by peeling — the keys(H^u_j)
// iteration of Algorithm 2.
func (t *KeyedEdgeSketch) Keys() []int {
	t.peel()
	out := make([]int, 0, len(t.recovered))
	for k := range t.recovered {
		out = append(out, int(k))
	}
	return out
}

// SpaceWords returns the memory footprint in 64-bit words.
func (t *KeyedEdgeSketch) SpaceWords() int {
	return 5*len(t.buckets) + 6
}
