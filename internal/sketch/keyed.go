package sketch

import (
	"fmt"

	"dynstream/internal/field"
	"dynstream/internal/hashing"
)

// KeyedEdgeSketch is the "linear hash table" H^u_j of Algorithm 2. For a
// terminal cluster T_u it ingests stream updates for edges (w, v) with
// w ∈ T_u ∩ Y_j and v ∉ T_u, keyed by the outside endpoint v, and
// supports the query: "give me one edge from v into T_u". The paper
// implements it as a table with Õ(n^{(i+1)/k}) cells, each holding a
// polylog-bit sketch of N(v) ∩ T_u ∩ Y_j; decodability of the whole
// table is guaranteed because a terminal node has |N(T_u)| =
// O(n^{(i+1)/k} log n) distinct outside neighbors (Claim 11).
//
// Implementation: rows × cells buckets, each accumulating, over the
// edge updates routed to it by hashing the key v,
//
//	edgeCount = Σ δ
//	keySum    = Σ δ·v,     keyFing  = Σ δ·r1^v      (field)
//	edgeSum   = Σ δ·e,     edgeFing = Σ δ·r2^e      (field)
//
// where e encodes the ordered pair (w, v). Because every edge of a key
// hashes to the same bucket per row, a key-pure bucket (detected by the
// fingerprint test) holds that key's complete aggregate, which can be
// peeled out of the key's buckets in the other rows — exactly the
// sparse-recovery decoding of the paper's hash table. The recovered
// per-key aggregate is a one-sparse edge sketch: at the subsampling
// level Y_j where v has a single surviving neighbor in T_u it decodes
// to a concrete edge, mirroring SKETCH_{O(log n)}(N(v) ∩ T_u ∩ Y_j).
//
// Bucket state is stored structure-of-arrays — five flat lanes
// (counts / keySums / keyFings / edgeSums / edgeFings) — so that Merge
// and zero scans run through the field batch kernels, like every other
// sketch in this package.
type KeyedEdgeSketch struct {
	seed  uint64
	n     int
	rows  int
	cells int

	counts    []int64  // edgeCount lane
	keySums   []uint64 // Σ δ·v
	keyFings  []uint64 // Σ δ·r1^v
	edgeSums  []uint64 // Σ δ·e
	edgeFings []uint64 // Σ δ·r2^e

	rowHash  []*hashing.Poly
	bank     *hashing.PolyBank // all row hashes, one interleaved Horner sweep
	keyBase  uint64
	edgeBase uint64
	keyTab   *field.PowTable
	edgeTab  *field.PowTable

	recovered map[uint64]keyedAgg
	dirty     bool
	gen       uint64
}

// Gen returns the table's generation counter: a monotonic count of
// state mutations, the key decode-side caches use to detect that a
// table is unchanged since the cached extraction.
func (t *KeyedEdgeSketch) Gen() uint64 { return t.gen }

// BumpGen forces a generation bump (used by whole-state replacement
// such as deserialization).
func (t *KeyedEdgeSketch) BumpGen() { t.gen++; t.dirty = true }

// keyedAgg is one bucket's (or one recovered key's) accumulator
// tuple — the scalar view of the five SoA lanes.
type keyedAgg struct {
	edgeCount int64
	keySum    uint64
	keyFing   uint64
	edgeSum   uint64
	edgeFing  uint64
}

func (b *keyedAgg) isZero() bool {
	return b.edgeCount == 0 && b.keySum == 0 && b.keyFing == 0 &&
		b.edgeSum == 0 && b.edgeFing == 0
}

func (b *keyedAgg) merge(o keyedAgg) {
	b.edgeCount += o.edgeCount
	b.keySum = field.Add(b.keySum, o.keySum)
	b.keyFing = field.Add(b.keyFing, o.keyFing)
	b.edgeSum = field.Add(b.edgeSum, o.edgeSum)
	b.edgeFing = field.Add(b.edgeFing, o.edgeFing)
}

// IsZero reports whether the table holds the zero vector's state —
// indistinguishable from a fresh table, which is what lets compressed
// encodings suppress it. Each lane is an early-exit kernel word scan,
// count lane first.
func (t *KeyedEdgeSketch) IsZero() bool {
	return field.AllZeroI64(t.counts) && field.AllZero(t.keySums) &&
		field.AllZero(t.keyFings) && field.AllZero(t.edgeSums) &&
		field.AllZero(t.edgeFings)
}

// pureKey reports whether all mass in a bucket belongs to a single
// key, and returns that key. It is a polynomial-identity fingerprint
// test, sound except with probability ≤ poly(n)/p.
func (t *KeyedEdgeSketch) pureKey(cnt int64, keySum, keyFing uint64) (key uint64, ok bool) {
	if cnt == 0 {
		return 0, false
	}
	cf := field.FromInt64(cnt)
	key = field.Mul(keySum, field.Inv(cf))
	if keyFing != field.Mul(cf, t.keyTab.Pow(key)) {
		return 0, false
	}
	return key, true
}

// NewKeyedEdgeSketch creates a table able to serve about `capacity`
// distinct outside keys, over a graph with n vertices.
func NewKeyedEdgeSketch(seed uint64, n, capacity int) *KeyedEdgeSketch {
	const rows = 3
	cells := 2 * capacity
	if cells < 8 {
		cells = 8
	}
	return newKeyedEdgeSketchGeom(seed, n, rows, cells)
}

// newKeyedEdgeSketchGeom builds the table from its raw geometry — the
// deserialization entry point (rows and cells are carried on the wire,
// so a decoded table matches its encoder cell for cell).
func newKeyedEdgeSketchGeom(seed uint64, n, rows, cells int) *KeyedEdgeSketch {
	t := &KeyedEdgeSketch{
		seed:      seed,
		n:         n,
		rows:      rows,
		cells:     cells,
		counts:    make([]int64, rows*cells),
		keySums:   make([]uint64, rows*cells),
		keyFings:  make([]uint64, rows*cells),
		edgeSums:  make([]uint64, rows*cells),
		edgeFings: make([]uint64, rows*cells),
		rowHash:   make([]*hashing.Poly, rows),
		keyBase:   field.Reduce(hashing.Mix(seed, 0xaa)),
		edgeBase:  field.Reduce(hashing.Mix(seed, 0xbb)),
		dirty:     true,
	}
	if t.keyBase < 2 {
		t.keyBase = 2
	}
	if t.edgeBase < 2 {
		t.edgeBase = 2
	}
	t.keyTab = field.NewPowTable(t.keyBase)
	t.edgeTab = field.NewPowTable(t.edgeBase)
	for r := 0; r < rows; r++ {
		t.rowHash[r] = hashing.NewPoly(hashing.Mix(seed, 0xcc, uint64(r)), 6)
	}
	// The row-hash bank is built lazily in rowBuckets: the spanner's
	// second pass allocates tens of thousands of tables per cluster
	// structure, most of which never see an update, and eager bank
	// construction was a measurable share of EndPass1.
	return t
}

func (t *KeyedEdgeSketch) encode(w, v int) uint64 {
	return uint64(w)*uint64(t.n) + uint64(v)
}

// rowBuckets fills hs[:rows] with the row hashes of key through the
// bank (bit-identical to per-row Poly.Hash, so laziness cannot change
// results). The bank is materialized on first use; like cell
// mutation, hashing is confined to the table's owning goroutine.
func (t *KeyedEdgeSketch) rowBuckets(key uint64, hs []uint64) {
	if t.rows <= maxBankRows {
		if t.bank == nil {
			t.bank = hashing.NewPolyBank(t.rowHash...)
		}
		t.bank.HashPrefix(key, hs)
		return
	}
	for r := 0; r < t.rows; r++ {
		hs[r] = t.rowHash[r].Hash(key)
	}
}

// addAgg folds upd into the buckets of key, one per row.
func (t *KeyedEdgeSketch) addAgg(key uint64, upd keyedAgg) {
	var hbuf [maxBankRows]uint64
	hs := hbuf[:t.rows]
	t.rowBuckets(key, hs)
	cells := uint64(t.cells)
	for r := 0; r < t.rows; r++ {
		i := r*t.cells + int(hs[r]%cells)
		t.counts[i] += upd.edgeCount
		t.keySums[i] = field.Add(t.keySums[i], upd.keySum)
		t.keyFings[i] = field.Add(t.keyFings[i], upd.keyFing)
		t.edgeSums[i] = field.Add(t.edgeSums[i], upd.edgeSum)
		t.edgeFings[i] = field.Add(t.edgeFings[i], upd.edgeFing)
	}
}

// Add folds an update for edge (w, v) — w inside the cluster, v the
// outside key — with multiplicity delta. The two fingerprint powers
// (key and edge, distinct bases) share one window traversal through
// field.PowPair.
func (t *KeyedEdgeSketch) Add(w, v int, delta int64) {
	if delta == 0 {
		return
	}
	t.dirty = true
	t.gen++
	key := uint64(v)
	e := t.encode(w, v)
	d := field.FromInt64(delta)
	kp, ep := field.PowPair(t.keyTab, t.edgeTab, key, field.Reduce(e))
	t.addAgg(key, keyedAgg{
		edgeCount: delta,
		keySum:    field.Mul(d, field.Reduce(key)),
		keyFing:   field.Mul(d, kp),
		edgeSum:   field.Mul(d, field.Reduce(e)),
		edgeFing:  field.Mul(d, ep),
	})
}

// KeyedEdgeUpdate is one (w, v, delta) edge update for AddBatch.
type KeyedEdgeUpdate struct {
	W, V  int
	Delta int64
}

// AddBatch folds a batch of edge updates; bit-identical to calling Add
// per element. Both fingerprint lanes of the whole batch are evaluated
// with shared window traversals (field.FingerprintVec) before the
// per-update scatter.
func (t *KeyedEdgeSketch) AddBatch(batch []KeyedEdgeUpdate) {
	if len(batch) == 0 {
		return
	}
	keyExps := make([]uint64, len(batch))
	edgeExps := make([]uint64, len(batch))
	for i, u := range batch {
		keyExps[i] = uint64(u.V)
		edgeExps[i] = field.Reduce(t.encode(u.W, u.V))
	}
	keyPows := make([]uint64, len(batch))
	edgePows := make([]uint64, len(batch))
	t.keyTab.FingerprintVec(keyPows, keyExps)
	t.edgeTab.FingerprintVec(edgePows, edgeExps)
	for i, u := range batch {
		if u.Delta == 0 {
			continue
		}
		t.dirty = true
		t.gen++
		d := field.FromInt64(u.Delta)
		t.addAgg(uint64(u.V), keyedAgg{
			edgeCount: u.Delta,
			keySum:    field.Mul(d, field.Reduce(uint64(u.V))),
			keyFing:   field.Mul(d, keyPows[i]),
			edgeSum:   field.Mul(d, edgeExps[i]),
			edgeFing:  field.Mul(d, edgePows[i]),
		})
	}
}

// Merge adds another table built with the same seed and geometry; the
// result is the table of the summed update streams, exactly as if every
// update of o had been Added to t. The linearity is what lets Algorithm
// 2's second pass be ingested in parallel shards. The five SoA lanes
// fold through the batch kernels.
func (t *KeyedEdgeSketch) Merge(o *KeyedEdgeSketch) error {
	if t.seed != o.seed || t.n != o.n || t.rows != o.rows || t.cells != o.cells {
		return fmt.Errorf("sketch: merging incompatible keyed tables (seed %d/%d, %dx%d vs %dx%d)",
			t.seed, o.seed, t.rows, t.cells, o.rows, o.cells)
	}
	field.MergeCells(t.counts, t.keySums, t.keyFings, o.counts, o.keySums, o.keyFings)
	field.AddVec(t.edgeSums, t.edgeSums, o.edgeSums)
	field.AddVec(t.edgeFings, t.edgeFings, o.edgeFings)
	t.dirty = true
	t.gen++
	return nil
}

// peel decodes the whole table: it repeatedly finds a key-pure bucket,
// records that key's aggregate, and subtracts it from the key's buckets
// in every row, until no further progress. Results are cached until the
// next Add.
func (t *KeyedEdgeSketch) peel() {
	if !t.dirty {
		return
	}
	// Most tables of a cluster structure are never touched by pass-2
	// routing (wrong subsampling level, empty neighborhood). The
	// kernel zero scan costs one read pass and no allocation, versus
	// copying five work lanes just to discover there is nothing to
	// peel.
	if t.IsZero() {
		t.recovered = nil
		t.dirty = false
		return
	}
	// One backing allocation for all five work lanes. The count lane
	// rides in the uint64 buffer as two's complement: addition and
	// subtraction are bit-identical under the reinterpretation, and
	// the zero test is unchanged.
	nb := len(t.counts)
	wbuf := make([]uint64, 5*nb)
	wc := wbuf[:nb:nb]
	wks := wbuf[nb : 2*nb : 2*nb]
	wkf := wbuf[2*nb : 3*nb : 3*nb]
	wes := wbuf[3*nb : 4*nb : 4*nb]
	wef := wbuf[4*nb : 5*nb : 5*nb]
	for i, c := range t.counts {
		wc[i] = uint64(c)
	}
	copy(wks, t.keySums)
	copy(wkf, t.keyFings)
	copy(wes, t.edgeSums)
	copy(wef, t.edgeFings)
	t.recovered = make(map[uint64]keyedAgg)
	var hbuf [maxBankRows]uint64
	hs := hbuf[:t.rows]
	cells := uint64(t.cells)
	for {
		progress := false
		for i := range wc {
			if wc[i] == 0 && wks[i] == 0 && wkf[i] == 0 && wes[i] == 0 && wef[i] == 0 {
				continue
			}
			key, ok := t.pureKey(int64(wc[i]), wks[i], wkf[i])
			if !ok {
				continue
			}
			agg := keyedAgg{int64(wc[i]), wks[i], wkf[i], wes[i], wef[i]}
			t.rowBuckets(key, hs)
			for r := 0; r < t.rows; r++ {
				j := r*t.cells + int(hs[r]%cells)
				wc[j] -= uint64(agg.edgeCount)
				wks[j] = field.Sub(wks[j], agg.keySum)
				wkf[j] = field.Sub(wkf[j], agg.keyFing)
				wes[j] = field.Sub(wes[j], agg.edgeSum)
				wef[j] = field.Sub(wef[j], agg.edgeFing)
			}
			prev := t.recovered[key]
			prev.merge(agg)
			if prev.isZero() {
				delete(t.recovered, key)
			} else {
				t.recovered[key] = prev
			}
			progress = true
		}
		if !progress {
			break
		}
	}
	t.dirty = false
}

// DecodeKey attempts to recover one edge (w, v) for the outside key v.
// It succeeds when the table peels and v's aggregate contains a single
// net edge — which happens whp at the correct subsampling level Y_j.
func (t *KeyedEdgeSketch) DecodeKey(v int) (w int, ok bool) {
	t.peel()
	b, found := t.recovered[uint64(v)]
	if !found || b.edgeCount == 0 {
		return 0, false
	}
	cf := field.FromInt64(b.edgeCount)
	e := field.Mul(b.edgeSum, field.Inv(cf))
	if b.edgeFing != field.Mul(cf, t.edgeTab.Pow(e)) {
		return 0, false
	}
	wID := int(e / uint64(t.n))
	vID := int(e % uint64(t.n))
	if vID != v || wID < 0 || wID >= t.n {
		return 0, false
	}
	return wID, true
}

// Keys returns the outside keys recovered by peeling — the keys(H^u_j)
// iteration of Algorithm 2.
func (t *KeyedEdgeSketch) Keys() []int {
	t.peel()
	out := make([]int, 0, len(t.recovered))
	for k := range t.recovered {
		out = append(out, int(k))
	}
	return out
}

// SpaceWords returns the memory footprint in 64-bit words.
func (t *KeyedEdgeSketch) SpaceWords() int {
	return 5*len(t.counts) + 6
}
