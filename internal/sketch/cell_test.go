package sketch

import (
	"testing"

	"dynstream/internal/field"
	"dynstream/internal/hashing"
)

const testFingBase = 31337

func fkey(key uint64) uint64 {
	return field.Pow(testFingBase, field.Reduce(key))
}

func TestCellZero(t *testing.T) {
	var c Cell
	if !c.IsZero() {
		t.Error("fresh cell not zero")
	}
	if _, _, ok := c.Decode(testFingBase); ok {
		t.Error("zero cell decoded")
	}
}

func TestCellOneSparse(t *testing.T) {
	var c Cell
	c.Update(97, 5, fkey(97))
	key, w, ok := c.Decode(testFingBase)
	if !ok || key != 97 || w != 5 {
		t.Errorf("decode = (%d,%d,%v), want (97,5,true)", key, w, ok)
	}
}

func TestCellNegativeWeight(t *testing.T) {
	var c Cell
	c.Update(12, -3, fkey(12))
	key, w, ok := c.Decode(testFingBase)
	if !ok || key != 12 || w != -3 {
		t.Errorf("decode = (%d,%d,%v), want (12,-3,true)", key, w, ok)
	}
}

func TestCellCancellation(t *testing.T) {
	var c Cell
	c.Update(55, 2, fkey(55))
	c.Update(55, -2, fkey(55))
	if !c.IsZero() {
		t.Error("cancelled cell should be zero")
	}
}

func TestCellRejectsTwoSparse(t *testing.T) {
	var c Cell
	c.Update(10, 1, fkey(10))
	c.Update(20, 1, fkey(20))
	if _, _, ok := c.Decode(testFingBase); ok {
		t.Error("two-sparse cell must not decode as one-sparse")
	}
}

func TestCellRejectsManyRandom(t *testing.T) {
	rng := hashing.NewSplitMix64(99)
	misdecodes := 0
	for trial := 0; trial < 500; trial++ {
		var c Cell
		for i := 0; i < 5; i++ {
			k := rng.Next() % 100000
			c.Update(k, 1, fkey(k))
		}
		if _, _, ok := c.Decode(testFingBase); ok {
			misdecodes++
		}
	}
	if misdecodes > 0 {
		t.Errorf("%d/500 dense cells mis-decoded as one-sparse", misdecodes)
	}
}

func TestCellMergeSub(t *testing.T) {
	var a, b Cell
	a.Update(7, 3, fkey(7))
	b.Update(9, 2, fkey(9))
	a.Merge(b)
	a.Sub(b)
	key, w, ok := a.Decode(testFingBase)
	if !ok || key != 7 || w != 3 {
		t.Errorf("merge+sub broke cell: (%d,%d,%v)", key, w, ok)
	}
}

func TestCellMergeResolvesToOne(t *testing.T) {
	// a has keys {1, 2}; b has key 2 with negative weight. Sum is
	// one-sparse on key 1.
	var a, b Cell
	a.Update(1, 4, fkey(1))
	a.Update(2, 6, fkey(2))
	b.Update(2, -6, fkey(2))
	a.Merge(b)
	key, w, ok := a.Decode(testFingBase)
	if !ok || key != 1 || w != 4 {
		t.Errorf("decode = (%d,%d,%v), want (1,4,true)", key, w, ok)
	}
}
