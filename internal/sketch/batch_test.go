package sketch

import (
	"bytes"
	"testing"

	"dynstream/internal/field"
	"dynstream/internal/hashing"
)

// The batched update APIs must be bit-for-bit identical to repeated
// single updates: same cells, same marshaled bytes, same decodes. The
// workloads below exercise random signed streams and churn
// (insert-then-delete) streams, the two regimes the ingest fast path
// optimizes.

// batchWorkload returns a seeded update stream with churn: every key
// appears with mixed signs, and a suffix deletes earlier insertions so
// cancellation paths are exercised.
func batchWorkload(seed uint64, n int, universe uint64) (keys []uint64, deltas []int64) {
	rng := hashing.NewSplitMix64(seed)
	for i := 0; i < n; i++ {
		k := rng.Next() % universe
		d := int64(1)
		if rng.Next()%2 == 0 {
			d = -1
		}
		keys = append(keys, k)
		deltas = append(deltas, d)
		if rng.Next()%4 == 0 { // churn: immediately revert
			keys = append(keys, k)
			deltas = append(deltas, -d)
		}
	}
	return keys, deltas
}

func TestSketchBAddBatchEquivalence(t *testing.T) {
	keys, deltas := batchWorkload(0x5ee1, 4000, 1<<30)
	one := NewSketchB(0xbadc, 16)
	for i := range keys {
		one.Add(keys[i], deltas[i])
	}
	batched := NewSketchB(0xbadc, 16)
	for i := 0; i < len(keys); i += 97 { // ragged batch sizes
		end := i + 97
		if end > len(keys) {
			end = len(keys)
		}
		batched.AddBatch(keys[i:end], deltas[i:end])
	}
	b1, err := one.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := batched.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("AddBatch state differs from repeated Add")
	}
}

func TestSketchBAddFkeyEquivalence(t *testing.T) {
	keys, deltas := batchWorkload(0x1234, 2000, 1<<40)
	one := NewSketchB(0xfeed, 8)
	two := NewSketchB(0xfeed, 8)
	for i := range keys {
		one.Add(keys[i], deltas[i])
		two.AddFkey(keys[i], deltas[i], two.Fkey(keys[i]))
	}
	b1, _ := one.MarshalBinary()
	b2, _ := two.MarshalBinary()
	if !bytes.Equal(b1, b2) {
		t.Fatal("AddFkey state differs from Add")
	}
}

func TestL0SamplerAddBatchEquivalence(t *testing.T) {
	keys, deltas := batchWorkload(0xc0ffee, 3000, 1<<20)
	one := NewL0Sampler(0x11, 1<<20, 4)
	for i := range keys {
		one.Add(keys[i], deltas[i])
	}
	batched := NewL0Sampler(0x11, 1<<20, 4)
	for i := 0; i < len(keys); i += 64 {
		end := i + 64
		if end > len(keys) {
			end = len(keys)
		}
		batched.AddBatch(keys[i:end], deltas[i:end])
	}
	b1, err := one.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := batched.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("L0Sampler AddBatch state differs from repeated Add")
	}
	k1, w1, ok1 := one.Sample()
	k2, w2, ok2 := batched.Sample()
	if k1 != k2 || w1 != w2 || ok1 != ok2 {
		t.Fatalf("samples differ: (%d,%d,%v) vs (%d,%d,%v)", k1, w1, ok1, k2, w2, ok2)
	}
}

func TestL0FamilySamplersMatchStandalone(t *testing.T) {
	// Samplers sliced out of a family's flat backing must be
	// indistinguishable from standalone NewL0Sampler instances.
	fam := NewL0Family(0xabcd, 1<<16, 4)
	shared := fam.NewSamplers(3)
	keys, deltas := batchWorkload(0x42, 2000, 1<<16)
	for i := range shared {
		solo := NewL0Sampler(0xabcd, 1<<16, 4)
		for j := range keys {
			if j%3 == i {
				solo.Add(keys[j], deltas[j])
				shared[i].Add(keys[j], deltas[j])
			}
		}
		b1, _ := solo.MarshalBinary()
		b2, _ := shared[i].MarshalBinary()
		if !bytes.Equal(b1, b2) {
			t.Fatalf("family sampler %d differs from standalone", i)
		}
	}
}

func TestL0SamplerGridMatchesStandalone(t *testing.T) {
	// Samplers sliced out of the vertex-major grid arena must be
	// indistinguishable from standalone per-family samplers.
	const rounds, n = 3, 4
	fams := make([]*L0Family, rounds)
	for r := range fams {
		fams[r] = NewL0Family(0x1000+uint64(r), 1<<16, 4)
	}
	grid := NewSamplerGrid(fams, n)
	keys, deltas := batchWorkload(0x99, 2000, 1<<16)
	for r := 0; r < rounds; r++ {
		for v := 0; v < n; v++ {
			solo := NewL0Sampler(0x1000+uint64(r), 1<<16, 4)
			for j := range keys {
				if j%n == v {
					solo.Add(keys[j], deltas[j])
					grid[r][v].Add(keys[j], deltas[j])
				}
			}
			b1, _ := solo.MarshalBinary()
			b2, _ := grid[r][v].MarshalBinary()
			if !bytes.Equal(b1, b2) {
				t.Fatalf("grid sampler (%d,%d) differs from standalone", r, v)
			}
		}
	}
}

func TestL0HintEquivalence(t *testing.T) {
	fam := NewL0Family(0x77, 1<<18, 4)
	plain := fam.NewSampler()
	hinted := fam.NewSampler()
	keys, deltas := batchWorkload(0x31337, 2500, 1<<18)
	var h L0Hint
	for i := range keys {
		plain.Add(keys[i], deltas[i])
		if deltas[i] != 0 {
			fam.Hint(keys[i], &h)
			hinted.AddHint(keys[i], deltas[i], &h)
		}
	}
	b1, _ := plain.MarshalBinary()
	b2, _ := hinted.MarshalBinary()
	if !bytes.Equal(b1, b2) {
		t.Fatal("AddHint state differs from Add")
	}
}

func TestKeyedEdgeSketchAddBatchEquivalence(t *testing.T) {
	const n = 300
	rng := hashing.NewSplitMix64(0x909)
	var batch []KeyedEdgeUpdate
	for i := 0; i < 3000; i++ {
		u := KeyedEdgeUpdate{
			W: int(rng.Next() % n), V: int(rng.Next() % n), Delta: 1,
		}
		if rng.Next()%2 == 0 {
			u.Delta = -1
		}
		batch = append(batch, u)
		if rng.Next()%4 == 0 { // churn
			rev := u
			rev.Delta = -u.Delta
			batch = append(batch, rev)
		}
	}
	one := NewKeyedEdgeSketch(0x66, n, 64)
	for _, u := range batch {
		one.Add(u.W, u.V, u.Delta)
	}
	batched := NewKeyedEdgeSketch(0x66, n, 64)
	for i := 0; i < len(batch); i += 113 {
		end := i + 113
		if end > len(batch) {
			end = len(batch)
		}
		batched.AddBatch(batch[i:end])
	}
	if len(one.counts) != len(batched.counts) {
		t.Fatal("geometry mismatch")
	}
	for i := range one.counts {
		if one.counts[i] != batched.counts[i] ||
			one.keySums[i] != batched.keySums[i] ||
			one.keyFings[i] != batched.keyFings[i] ||
			one.edgeSums[i] != batched.edgeSums[i] ||
			one.edgeFings[i] != batched.edgeFings[i] {
			t.Fatalf("bucket %d differs after AddBatch", i)
		}
	}
	for v := 0; v < n; v++ {
		w1, ok1 := one.DecodeKey(v)
		w2, ok2 := batched.DecodeKey(v)
		if w1 != w2 || ok1 != ok2 {
			t.Fatalf("DecodeKey(%d) differs: (%d,%v) vs (%d,%v)", v, w1, ok1, w2, ok2)
		}
	}
}

func TestF0AddBatchEquivalence(t *testing.T) {
	keys, deltas := batchWorkload(0xf0f0, 4000, 1<<16)
	one := NewF0(0x21, 1<<16)
	for i := range keys {
		one.Add(keys[i], deltas[i])
	}
	batched := NewF0(0x21, 1<<16)
	for i := 0; i < len(keys); i += 200 {
		end := i + 200
		if end > len(keys) {
			end = len(keys)
		}
		batched.AddBatch(keys[i:end], deltas[i:end])
	}
	for j := range one.acc {
		for b := range one.acc[j] {
			if one.acc[j][b] != batched.acc[j][b] {
				t.Fatalf("F0 accumulator (%d,%d) differs", j, b)
			}
		}
	}
}

func TestCellDecodeTableMatchesDecode(t *testing.T) {
	rng := hashing.NewSplitMix64(0x3c3c)
	for trial := 0; trial < 200; trial++ {
		base := rng.Next()
		var c Cell
		// One-sparse, two-sparse, and empty cells.
		nItems := int(rng.Next() % 3)
		tab := field.NewPowTable(base)
		for i := 0; i < nItems; i++ {
			key := rng.Next() % (1 << 48)
			c.Update(key, int64(1+rng.Next()%3), tab.Pow(field.Reduce(key)))
		}
		k1, w1, ok1 := c.Decode(tab.Base())
		k2, w2, ok2 := c.DecodeTable(tab)
		if k1 != k2 || w1 != w2 || ok1 != ok2 {
			t.Fatalf("trial %d: Decode (%d,%d,%v) != DecodeTable (%d,%d,%v)",
				trial, k1, w1, ok1, k2, w2, ok2)
		}
	}
}
