package sketch

import (
	"dynstream/internal/field"
	"dynstream/internal/hashing"
)

// L0Family is the immutable randomness and geometry shared by every
// L0Sampler built from one (seed, universe, perLevel) triple: the level
// hash, the tie-break hash, and one SketchB shape (hash rows +
// fingerprint power table) per geometric level. The AGM sketch keeps n
// samplers per Borůvka round, all from the same family — sharing the
// family makes construction O(1) hash/table objects per round instead
// of O(n·levels), and lets one update's routing (level, fingerprint
// powers, cell indices) be computed once and replayed into any sampler
// of the family (see Hint / AddHint).
type L0Family struct {
	seed      uint64
	universe  uint64
	perLevel  int
	rows      int // uniform across levels (same perLevel everywhere)
	levelHash *hashing.Poly
	choiceFn  *hashing.Poly
	levels    []*sketchBShape
	// bank interleaves every level's row hashes (level-major, row-minor)
	// so Hint evaluates the (level+1)×rows bucket hashes of one update
	// in a single Horner sweep instead of one Horner walk per row per
	// level.
	bank *hashing.PolyBank
}

// NewL0Family derives the family exactly as NewL0Sampler always did, so
// samplers over a shared family are bit-identical to standalone ones.
func NewL0Family(seed uint64, universe uint64, perLevel int) *L0Family {
	nLevels := 2
	for u := universe; u > 1; u >>= 1 {
		nLevels++
	}
	if perLevel < 2 {
		perLevel = 2
	}
	f := &L0Family{
		seed:      seed,
		universe:  universe,
		perLevel:  perLevel,
		levelHash: hashing.NewPoly(hashing.Mix(seed, 0x10), 8),
		choiceFn:  hashing.NewPoly(hashing.Mix(seed, 0xc4), 6),
		levels:    make([]*sketchBShape, nLevels),
	}
	for j := range f.levels {
		f.levels[j] = newSketchBShape(hashing.Mix(seed, 0x1b, uint64(j)), perLevel, SketchConfig{})
	}
	f.rows = f.levels[0].rows
	var rowPolys []*hashing.Poly
	for _, sh := range f.levels {
		rowPolys = append(rowPolys, sh.hashes...)
	}
	f.bank = hashing.NewPolyBank(rowPolys...)
	return f
}

// NewSampler returns a zeroed sampler of the family. Level sketches are
// materialized lazily: a nil levels[j] is a sketch of the zero vector,
// allocated only when an update first routes into it. Geometric
// sampling makes the population extremely sparse — level j of a vertex
// sampler is touched with probability ~2^-j per incident update — so
// lazy materialization is what keeps construction of large sketch
// arrays (agm.New at n=10k allocates n×rounds samplers) from zeroing
// gigabytes of never-touched cells.
func (f *L0Family) NewSampler() *L0Sampler {
	return &L0Sampler{fam: f, levels: make([]*SketchB, len(f.levels))}
}

// NewSamplers returns n zeroed samplers backed by a handful of
// contiguous allocations — agm.New calls this once per round instead
// of allocating n×levels objects.
//
// Level 0 is special-cased: every update routes into it (geometric
// sampling only thins levels j >= 1), so for array-of-samplers uses
// every sampler with any incident update materializes it anyway.
// Allocating all n level-0 sketches eagerly out of three flat backing
// arrays replaces ~4n tiny allocations (and their GC scan load) with
// four, and lays the hottest cells out vertex-contiguously. Levels
// j >= 1 — touched with probability 2^-j per update — stay lazy, which
// is what keeps construction from zeroing the (much larger) never-
// touched tail. A materialized zero level is indistinguishable from a
// nil one to every observer (marshal and IsZero are content-canonical).
func (f *L0Family) NewSamplers(n int) []*L0Sampler {
	L := len(f.levels)
	samplers := make([]L0Sampler, n)
	levels := make([]*SketchB, n*L)
	out := make([]*L0Sampler, n)
	sh0 := f.levels[0]
	cells := sh0.cells()
	sk0 := make([]SketchB, n)
	counts := make([]int64, n*cells)
	sums := make([]uint64, 2*n*cells)
	for i := range samplers {
		lv := levels[i*L : (i+1)*L : (i+1)*L]
		c0 := i * cells
		pair := sums[2*c0 : 2*c0+2*cells : 2*c0+2*cells]
		sk0[i] = SketchB{
			shape:   sh0,
			counts:  counts[c0 : c0+cells : c0+cells],
			keySums: pair[:cells:cells],
			fings:   pair[cells : 2*cells : 2*cells],
		}
		lv[0] = &sk0[i]
		samplers[i] = L0Sampler{fam: f, levels: lv}
		out[i] = &samplers[i]
	}
	return out
}

// NewSamplerGrid returns one sampler per (family, vertex) pair —
// out[r][v] belongs to fams[r] — with every level-0 arena in a single
// backing allocation laid out vertex-major, round-minor: the level-0
// cells of vertex v sit at consecutive 288-byte-class strides across
// all rounds. An edge update fans into every round for each of its two
// endpoints, so this turns the hottest scatter of ingest from R random
// regions per endpoint into one short strided sweep the hardware
// prefetcher tracks. Content and wire format are identical to
// per-family NewSamplers (a materialized zero level is content-
// canonical); only the allocation layout differs. Families must share
// a geometry (same level count and level-0 cell count) — mixed
// geometries fall back to per-family arenas.
func NewSamplerGrid(fams []*L0Family, n int) [][]*L0Sampler {
	R := len(fams)
	if R == 0 {
		return nil
	}
	L := len(fams[0].levels)
	cells := fams[0].levels[0].cells()
	for _, f := range fams[1:] {
		if len(f.levels) != L || f.levels[0].cells() != cells {
			out := make([][]*L0Sampler, R)
			for r, f := range fams {
				out[r] = f.NewSamplers(n)
			}
			return out
		}
	}
	samplers := make([]L0Sampler, n*R)
	levels := make([]*SketchB, n*R*L)
	sk0 := make([]SketchB, n*R)
	counts := make([]int64, n*R*cells)
	sums := make([]uint64, 2*n*R*cells)
	out := make([][]*L0Sampler, R)
	for r := range out {
		out[r] = make([]*L0Sampler, n)
	}
	for v := 0; v < n; v++ {
		for r := 0; r < R; r++ {
			i := v*R + r
			lv := levels[i*L : (i+1)*L : (i+1)*L]
			c0 := i * cells
			pair := sums[2*c0 : 2*c0+2*cells : 2*c0+2*cells]
			sk0[i] = SketchB{
				shape:   fams[r].levels[0],
				counts:  counts[c0 : c0+cells : c0+cells],
				keySums: pair[:cells:cells],
				fings:   pair[cells : 2*cells : 2*cells],
			}
			lv[0] = &sk0[i]
			samplers[i] = L0Sampler{fam: fams[r], levels: lv}
			out[r][v] = &samplers[i]
		}
	}
	return out
}

// Warm materializes every level shape's lazy fingerprint power table.
// Parallel decode calls it once per round before fanning component
// merges and Sample decodes across workers: materialization is
// confined to one goroutine, so concurrent decoders must find the
// tables already built.
func (f *L0Family) Warm() {
	for _, sh := range f.levels {
		sh.tab()
	}
}

// L0Hint is the key-dependent routing of one update, valid for every
// sampler of the family that produced it: the geometric level, and per
// surviving level the fingerprint power and the target cell index per
// hash row. Computing it once and applying it to several samplers (the
// two endpoints of an AGM edge update) halves the hash work; reusing
// the hint buffer across updates keeps ingest allocation-free.
type L0Hint struct {
	level int
	fkeys []uint64
	cells []int32  // (level+1)×rows target indices, row-major per level
	hash  []uint64 // banked row-hash scratch, reused across calls
}

// Hint fills h with the routing of key. Slices are reused across
// calls. The bucket hashes of every surviving level come from one
// interleaved Horner sweep over the family bank, and the per-level
// fingerprint powers are evaluated two levels at a time with a shared
// window traversal (field.PowPair) — both bit-identical to the
// per-row, per-level scalar evaluation.
func (f *L0Family) Hint(key uint64, h *L0Hint) {
	lv := f.levelHash.Level(key)
	if lv >= len(f.levels) {
		lv = len(f.levels) - 1
	}
	h.level = lv
	red := field.Reduce(key)
	rows := f.rows
	lanes := (lv + 1) * rows
	if cap(h.hash) < lanes {
		h.hash = make([]uint64, lanes)
	}
	hs := h.hash[:lanes]
	f.bank.HashPrefix(key, hs)
	if cap(h.cells) < lanes {
		h.cells = make([]int32, lanes)
	}
	h.cells = h.cells[:lanes]
	for j := 0; j <= lv; j++ {
		sh := f.levels[j]
		cols := uint64(sh.cols)
		for r := 0; r < rows; r++ {
			h.cells[j*rows+r] = int32(r*sh.cols + int(hs[j*rows+r]%cols))
		}
	}
	if cap(h.fkeys) < lv+1 {
		h.fkeys = make([]uint64, lv+1)
	}
	h.fkeys = h.fkeys[:lv+1]
	j := 0
	for ; j+1 <= lv; j += 2 {
		h.fkeys[j], h.fkeys[j+1] = field.PowPair(f.levels[j].tab(), f.levels[j+1].tab(), red, red)
	}
	if j <= lv {
		h.fkeys[j] = f.levels[j].tab().Pow(red)
	}
}

// L0Sampler recovers one element of the support of a signed integer
// vector presented as a dynamic stream. The paper references
// L0-sampling as the alternative to its explicit Y_j sets ("the use of
// the sets Y_j could be eliminated by using L0-SAMPLER in a similar way
// as [AGM12a] does"); the AGM spanning-forest substrate (Theorem 10) is
// built directly on these.
//
// Implementation: geometric subsampling levels; level j sketches the
// coordinates sampled at rate 2^-j with a small SketchB. Sampling walks
// from the sparsest level down and returns an element of the first
// level that decodes to a nonempty vector.
type L0Sampler struct {
	fam    *L0Family
	levels []*SketchB
	gen    uint64
}

// Gen returns the sampler's generation counter: a monotonic count of
// state mutations. Zero-valued merges (the other side has no
// materialized levels, i.e. sketches the zero vector) do not count, so
// merging a zero-suppressed wire blob bumps exactly the samplers the
// blob actually touches.
func (s *L0Sampler) Gen() uint64 { return s.gen }

// BumpGen forces a generation bump, invalidating any decode-cache
// entry that covers this sampler. Deserialization and other
// whole-state replacements call it.
func (s *L0Sampler) BumpGen() { s.gen++ }

// NewL0Sampler creates a sampler for keys from a universe of the given
// size. perLevel is the sparse-recovery budget at each level; 4–8 is
// plenty because some level has Θ(1) expected survivors.
func NewL0Sampler(seed uint64, universe uint64, perLevel int) *L0Sampler {
	return NewL0Family(seed, universe, perLevel).NewSampler()
}

// Family returns the shared randomness/geometry of the sampler.
func (s *L0Sampler) Family() *L0Family { return s.fam }

// level materializes and returns level j (nil means zero sketch).
func (s *L0Sampler) level(j int) *SketchB {
	if s.levels[j] == nil {
		s.levels[j] = s.fam.levels[j].instance()
	}
	return s.levels[j]
}

// Add folds x[key] += delta into the sampler.
func (s *L0Sampler) Add(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	s.gen++
	lv := s.fam.levelHash.Level(key)
	if lv >= len(s.levels) {
		lv = len(s.levels) - 1
	}
	red := field.Reduce(key)
	for j := 0; j <= lv; j++ {
		s.level(j).AddFkey(key, delta, s.fam.levels[j].tab().Pow(red))
	}
}

// AddBatch folds a batch of updates; bit-identical to calling Add per
// element. keys and deltas must have equal length.
func (s *L0Sampler) AddBatch(keys []uint64, deltas []int64) {
	var h L0Hint
	for i, key := range keys {
		if deltas[i] == 0 {
			continue
		}
		s.fam.Hint(key, &h)
		s.AddHint(key, deltas[i], &h)
	}
}

// AddHint folds x[key] += delta using a routing hint produced by this
// sampler's family for the same key; bit-identical to Add(key, delta).
// The level-independent field values d and d·key are computed once here
// and shared across all surviving levels (AddFkey recomputes them per
// level sketch).
func (s *L0Sampler) AddHint(key uint64, delta int64, h *L0Hint) {
	if delta == 0 {
		return
	}
	s.gen++
	d := field.FromInt64(delta)
	ks := field.Mul(d, field.Reduce(key))
	rows := s.fam.rows
	for j := 0; j <= h.level; j++ {
		s.level(j).addRouted(delta, ks, field.Mul(d, h.fkeys[j]), h.cells[j*rows:(j+1)*rows])
	}
}

// Merge adds another sampler built with the same seed; the result
// samples from the support of the summed vectors. A nil level on
// either side is a zero sketch: merging it is a no-op (other side nil)
// or a copy (own side nil).
func (s *L0Sampler) Merge(o *L0Sampler) error {
	if len(s.levels) != len(o.levels) {
		return errIncompatible
	}
	touched := false
	for j := range s.levels {
		// A nil level and a materialized-but-zero level (an eager
		// level-0 arena, or churn canceled back to zero) both sketch
		// the zero vector: folding either is a no-op, so skip the
		// merge sweep and leave the generation — and with it every
		// cached decode keyed on it — untouched. The early-exit
		// kernel scan makes the zero test cheap for nonzero levels.
		if o.levels[j] == nil || o.levels[j].IsZero() {
			continue
		}
		touched = true
		if err := s.level(j).Merge(o.levels[j]); err != nil {
			return err
		}
	}
	if touched {
		s.gen++
	}
	return nil
}

// Sub subtracts another sampler built with the same seed.
func (s *L0Sampler) Sub(o *L0Sampler) error {
	if len(s.levels) != len(o.levels) {
		return errIncompatible
	}
	touched := false
	for j := range s.levels {
		// Same zero-content skip as Merge: subtracting a zero level is
		// a no-op and must not dirty the generation.
		if o.levels[j] == nil || o.levels[j].IsZero() {
			continue
		}
		touched = true
		if err := s.level(j).Sub(o.levels[j]); err != nil {
			return err
		}
	}
	if touched {
		s.gen++
	}
	return nil
}

// SetTo makes s a copy of o, adopting o's family and reusing s's
// materialized level storage where the geometry matches — the
// scratch-reuse path of the parallel Borůvka decode, which would
// otherwise Clone a sampler per component per round. Levels that are
// zero (nil) in o become nil in s, so the copy decodes exactly like o.
func (s *L0Sampler) SetTo(o *L0Sampler) {
	s.gen++
	s.fam = o.fam
	if len(s.levels) != len(o.levels) {
		s.levels = make([]*SketchB, len(o.levels))
	}
	for j := range o.levels {
		switch {
		case o.levels[j] == nil:
			s.levels[j] = nil
		case s.levels[j] == nil:
			s.levels[j] = o.levels[j].Clone()
		default:
			s.levels[j].SetTo(o.levels[j])
		}
	}
}

// Clone returns a deep copy (the immutable family is shared; zero
// levels stay unmaterialized).
func (s *L0Sampler) Clone() *L0Sampler {
	c := &L0Sampler{fam: s.fam, levels: make([]*SketchB, len(s.levels))}
	for j := range s.levels {
		if s.levels[j] != nil {
			c.levels[j] = s.levels[j].Clone()
		}
	}
	return c
}

// Sample returns one support element (key and net weight). ok=false
// means the vector is (whp) zero or every level failed to decode — a
// 1/poly(n) probability event for nonzero vectors.
func (s *L0Sampler) Sample() (key uint64, weight int64, ok bool) {
	for j := len(s.levels) - 1; j >= 0; j-- {
		if s.levels[j] == nil {
			continue // zero sketch: decodes to the empty vector
		}
		items, decoded := s.levels[j].Decode()
		if !decoded {
			// Overloaded level: denser levels are hopeless too only in
			// expectation — keep scanning downward since independence
			// across levels is limited, then give up at j=0.
			continue
		}
		if len(items) == 0 {
			continue
		}
		// Choose the item with the minimum choice-hash so that the
		// sample is a near-uniform function of the support, not of the
		// decode order.
		var (
			bestKey uint64
			bestW   int64
			bestH   uint64
			first   = true
		)
		for k, w := range items {
			h := s.fam.choiceFn.Hash(k)
			if first || h < bestH {
				bestKey, bestW, bestH, first = k, w, h, false
			}
		}
		return bestKey, bestW, true
	}
	return 0, 0, false
}

// SpaceWords returns the memory footprint in 64-bit words. Zero levels
// count at full size: this is the paper-facing space accounting, which
// describes the sketch as a linear projection independent of how
// sparsely the implementation materializes it.
func (s *L0Sampler) SpaceWords() int {
	w := 2
	for j, lv := range s.levels {
		if lv == nil {
			w += 3*s.fam.levels[j].cells() + 4
		} else {
			w += lv.SpaceWords()
		}
	}
	return w
}
