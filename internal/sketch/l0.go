package sketch

import (
	"dynstream/internal/hashing"
)

// L0Sampler recovers one element of the support of a signed integer
// vector presented as a dynamic stream. The paper references
// L0-sampling as the alternative to its explicit Y_j sets ("the use of
// the sets Y_j could be eliminated by using L0-SAMPLER in a similar way
// as [AGM12a] does"); the AGM spanning-forest substrate (Theorem 10) is
// built directly on these.
//
// Implementation: geometric subsampling levels; level j sketches the
// coordinates sampled at rate 2^-j with a small SketchB. Sampling walks
// from the sparsest level down and returns an element of the first
// level that decodes to a nonempty vector.
type L0Sampler struct {
	seed      uint64
	universe  uint64
	perLevel  int
	levels    []*SketchB
	levelHash *hashing.Poly
	choiceFn  *hashing.Poly
}

// NewL0Sampler creates a sampler for keys from a universe of the given
// size. perLevel is the sparse-recovery budget at each level; 4–8 is
// plenty because some level has Θ(1) expected survivors.
func NewL0Sampler(seed uint64, universe uint64, perLevel int) *L0Sampler {
	nLevels := 2
	for u := universe; u > 1; u >>= 1 {
		nLevels++
	}
	if perLevel < 2 {
		perLevel = 2
	}
	s := &L0Sampler{
		seed:      seed,
		universe:  universe,
		perLevel:  perLevel,
		levels:    make([]*SketchB, nLevels),
		levelHash: hashing.NewPoly(hashing.Mix(seed, 0x10), 8),
		choiceFn:  hashing.NewPoly(hashing.Mix(seed, 0xc4), 6),
	}
	for j := range s.levels {
		s.levels[j] = NewSketchB(hashing.Mix(seed, 0x1b, uint64(j)), perLevel)
	}
	return s
}

// Add folds x[key] += delta into the sampler.
func (s *L0Sampler) Add(key uint64, delta int64) {
	if delta == 0 {
		return
	}
	lv := s.levelHash.Level(key)
	if lv >= len(s.levels) {
		lv = len(s.levels) - 1
	}
	for j := 0; j <= lv; j++ {
		s.levels[j].Add(key, delta)
	}
}

// Merge adds another sampler built with the same seed; the result
// samples from the support of the summed vectors.
func (s *L0Sampler) Merge(o *L0Sampler) error {
	for j := range s.levels {
		if err := s.levels[j].Merge(o.levels[j]); err != nil {
			return err
		}
	}
	return nil
}

// Sub subtracts another sampler built with the same seed.
func (s *L0Sampler) Sub(o *L0Sampler) error {
	for j := range s.levels {
		if err := s.levels[j].Sub(o.levels[j]); err != nil {
			return err
		}
	}
	return nil
}

// Clone returns a deep copy.
func (s *L0Sampler) Clone() *L0Sampler {
	c := &L0Sampler{
		seed:      s.seed,
		universe:  s.universe,
		perLevel:  s.perLevel,
		levels:    make([]*SketchB, len(s.levels)),
		levelHash: s.levelHash,
		choiceFn:  s.choiceFn,
	}
	for j := range s.levels {
		c.levels[j] = s.levels[j].Clone()
	}
	return c
}

// Sample returns one support element (key and net weight). ok=false
// means the vector is (whp) zero or every level failed to decode — a
// 1/poly(n) probability event for nonzero vectors.
func (s *L0Sampler) Sample() (key uint64, weight int64, ok bool) {
	for j := len(s.levels) - 1; j >= 0; j-- {
		items, decoded := s.levels[j].Decode()
		if !decoded {
			// Overloaded level: denser levels are hopeless too only in
			// expectation — keep scanning downward since independence
			// across levels is limited, then give up at j=0.
			continue
		}
		if len(items) == 0 {
			continue
		}
		// Choose the item with the minimum choice-hash so that the
		// sample is a near-uniform function of the support, not of the
		// decode order.
		var (
			bestKey uint64
			bestW   int64
			bestH   uint64
			first   = true
		)
		for k, w := range items {
			h := s.choiceFn.Hash(k)
			if first || h < bestH {
				bestKey, bestW, bestH, first = k, w, h, false
			}
		}
		return bestKey, bestW, true
	}
	return 0, 0, false
}

// SpaceWords returns the memory footprint in 64-bit words.
func (s *L0Sampler) SpaceWords() int {
	w := 2
	for _, lv := range s.levels {
		w += lv.SpaceWords()
	}
	return w
}
