package sketch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynstream/internal/hashing"
)

func TestSketchBEmptyDecodes(t *testing.T) {
	s := NewSketchB(1, 8)
	m, ok := s.Decode()
	if !ok || len(m) != 0 {
		t.Errorf("empty sketch: decode=(%v,%v)", m, ok)
	}
	if !s.IsZero() {
		t.Error("empty sketch not zero")
	}
}

func TestSketchBExactRecovery(t *testing.T) {
	s := NewSketchB(2, 10)
	want := map[uint64]int64{5: 1, 900: 3, 123456: -2, 42: 7}
	for k, v := range want {
		s.Add(k, v)
	}
	got, ok := s.Decode()
	if !ok {
		t.Fatal("decode failed")
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %d: got %d want %d", k, got[k], v)
		}
	}
}

func TestSketchBAtCapacity(t *testing.T) {
	const b = 16
	fails := 0
	for trial := uint64(0); trial < 50; trial++ {
		s := NewSketchB(hashing.Mix(3, trial), b)
		rng := hashing.NewSplitMix64(trial)
		want := map[uint64]int64{}
		for len(want) < b {
			k := rng.Next() % 1000000
			if _, dup := want[k]; dup {
				continue
			}
			want[k] = int64(rng.Intn(9) + 1)
			s.Add(k, want[k])
		}
		got, ok := s.Decode()
		if !ok {
			fails++
			continue
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("trial %d key %d: got %d want %d", trial, k, got[k], v)
			}
		}
	}
	if fails > 2 {
		t.Errorf("decode failed %d/50 trials at exact capacity", fails)
	}
}

func TestSketchBOverloadFailsCleanly(t *testing.T) {
	s := NewSketchB(4, 4)
	rng := hashing.NewSplitMix64(77)
	for i := 0; i < 200; i++ {
		s.Add(rng.Next()%100000, 1)
	}
	if _, ok := s.Decode(); ok {
		// With 200 >> 4 items a full decode would mean recovering far
		// more than capacity. Peeling can get lucky in principle, but
		// at 200 items in ~18 cells it cannot.
		t.Error("overloaded sketch claimed successful decode")
	}
}

func TestSketchBDeletions(t *testing.T) {
	s := NewSketchB(5, 8)
	// Insert 100 keys, delete all but 3.
	for k := uint64(0); k < 100; k++ {
		s.Add(k, 1)
	}
	for k := uint64(0); k < 97; k++ {
		s.Add(k, -1)
	}
	got, ok := s.Decode()
	if !ok {
		t.Fatal("decode failed after deletions")
	}
	if len(got) != 3 {
		t.Fatalf("got %d keys, want 3: %v", len(got), got)
	}
	for k := uint64(97); k < 100; k++ {
		if got[k] != 1 {
			t.Errorf("key %d: got %d want 1", k, got[k])
		}
	}
}

func TestSketchBFullCancellation(t *testing.T) {
	s := NewSketchB(6, 8)
	rng := hashing.NewSplitMix64(6)
	keys := make([]uint64, 500)
	for i := range keys {
		keys[i] = rng.Next() % (1 << 40)
		s.Add(keys[i], 2)
	}
	for _, k := range keys {
		s.Add(k, -2)
	}
	if !s.IsZero() {
		t.Error("fully cancelled sketch should be zero")
	}
	m, ok := s.Decode()
	if !ok || len(m) != 0 {
		t.Errorf("decode=(%v,%v), want empty success", m, ok)
	}
}

func TestSketchBLinearity(t *testing.T) {
	// Property: sketch(x) merged with sketch(y) decodes to x+y.
	f := func(xs, ys []uint16) bool {
		if len(xs) > 6 {
			xs = xs[:6]
		}
		if len(ys) > 6 {
			ys = ys[:6]
		}
		a := NewSketchB(7, 16)
		b := NewSketchB(7, 16)
		want := map[uint64]int64{}
		for _, x := range xs {
			a.Add(uint64(x), 1)
			want[uint64(x)]++
		}
		for _, y := range ys {
			b.Add(uint64(y), 2)
			want[uint64(y)] += 2
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		got, ok := a.Decode()
		if !ok {
			// A decode failure is a tolerated whp event; the property
			// under test is that no *wrong* vector is ever returned.
			return true
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(108))}); err != nil {
		t.Error(err)
	}
}

func TestSketchBSubtraction(t *testing.T) {
	a := NewSketchB(8, 8)
	b := NewSketchB(8, 8)
	for k := uint64(0); k < 5; k++ {
		a.Add(k, 1)
	}
	b.Add(2, 1)
	b.Add(3, 1)
	if err := a.Sub(b); err != nil {
		t.Fatal(err)
	}
	got, ok := a.Decode()
	if !ok {
		t.Fatal("decode failed")
	}
	want := map[uint64]int64{0: 1, 1: 1, 4: 1}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %d: got %d want %d", k, got[k], v)
		}
	}
}

func TestSketchBMergeIncompatible(t *testing.T) {
	a := NewSketchB(1, 8)
	b := NewSketchB(2, 8)
	if err := a.Merge(b); err == nil {
		t.Error("merging different seeds should error")
	}
	c := NewSketchB(1, 32)
	if err := a.Merge(c); err == nil {
		t.Error("merging different geometry should error")
	}
}

func TestSketchBDecodeDoesNotMutate(t *testing.T) {
	s := NewSketchB(9, 8)
	s.Add(10, 1)
	s.Add(20, 2)
	first, ok1 := s.Decode()
	second, ok2 := s.Decode()
	if !ok1 || !ok2 || len(first) != len(second) {
		t.Fatal("decode mutated the sketch")
	}
	for k, v := range first {
		if second[k] != v {
			t.Fatal("decode results differ")
		}
	}
}

func TestSketchBClone(t *testing.T) {
	s := NewSketchB(10, 8)
	s.Add(1, 1)
	c := s.Clone()
	c.Add(2, 1)
	m, ok := s.Decode()
	if !ok || len(m) != 1 {
		t.Error("clone mutation leaked into original")
	}
}

func TestSketchBSpaceWords(t *testing.T) {
	s := NewSketchB(11, 16)
	if s.SpaceWords() <= 0 {
		t.Error("space accounting must be positive")
	}
	big := NewSketchB(11, 160)
	if big.SpaceWords() <= s.SpaceWords() {
		t.Error("bigger capacity should cost more space")
	}
}

func TestSketchBLargeKeys(t *testing.T) {
	// Keys near 2^61 must round-trip (edge encodings are < n^2 but the
	// structure itself should handle the full field range).
	s := NewSketchB(12, 8)
	keys := []uint64{1 << 60, (1 << 61) - 2, 1<<55 + 12345}
	for _, k := range keys {
		s.Add(k, 1)
	}
	got, ok := s.Decode()
	if !ok || len(got) != len(keys) {
		t.Fatalf("decode=(%v,%v)", got, ok)
	}
	for _, k := range keys {
		if got[k] != 1 {
			t.Errorf("key %d missing", k)
		}
	}
}
