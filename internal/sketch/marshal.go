package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary serialization for the linear sketches. The encoding carries
// the construction parameters (seed + geometry) followed by the raw
// linear state; hash functions are reconstructed deterministically
// from the seed on decode. This is what makes the distributed protocol
// of the paper's introduction concrete: servers exchange sketch bytes,
// and a sketch decoded from bytes merges with any sketch built from
// the same seed.

// The magic constants identify the structure kind and version.
const (
	tagSketchB   uint64 = 0xd15c_0001
	tagL0Sampler uint64 = 0xd15c_0002
)

var errCorrupt = errors.New("sketch: corrupt serialized data")

type wbuf struct{ b []byte }

func (w *wbuf) u64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	w.b = append(w.b, tmp[:]...)
}

func (w *wbuf) i64(v int64) { w.u64(uint64(v)) }

type rbuf struct{ b []byte }

func (r *rbuf) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, errCorrupt
	}
	v := binary.LittleEndian.Uint64(r.b[:8])
	r.b = r.b[8:]
	return v, nil
}

func (r *rbuf) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

// MarshalBinary encodes the sketch: parameters plus linear state.
func (s *SketchB) MarshalBinary() ([]byte, error) {
	w := &wbuf{}
	w.u64(tagSketchB)
	w.u64(s.seed)
	w.u64(uint64(s.capacity))
	w.u64(uint64(s.rows))
	w.u64(uint64(s.cols))
	for i := range s.cells {
		w.i64(s.cells[i].count)
		w.u64(s.cells[i].keySum)
		w.u64(s.cells[i].fing)
	}
	return w.b, nil
}

// UnmarshalBinary decodes a sketch previously encoded with
// MarshalBinary, reconstructing hash functions from the stored seed.
func (s *SketchB) UnmarshalBinary(data []byte) error {
	r := &rbuf{b: data}
	tag, err := r.u64()
	if err != nil || tag != tagSketchB {
		return fmt.Errorf("sketch: not a SketchB encoding: %w", errCorrupt)
	}
	seed, err := r.u64()
	if err != nil {
		return err
	}
	capacity, err := r.u64()
	if err != nil {
		return err
	}
	rows, err := r.u64()
	if err != nil {
		return err
	}
	cols, err := r.u64()
	if err != nil {
		return err
	}
	if rows == 0 || cols == 0 || rows > 16 || cols > 1<<30 {
		return errCorrupt
	}
	// Rebuild structure exactly as the constructor would, then adopt
	// the explicit geometry (which may differ from defaults).
	rebuilt := NewSketchBConfig(seed, int(capacity), SketchConfig{Rows: int(rows)})
	rebuilt.cols = int(cols)
	rebuilt.cells = make([]Cell, int(rows)*int(cols))
	for i := range rebuilt.cells {
		c := &rebuilt.cells[i]
		if c.count, err = r.i64(); err != nil {
			return err
		}
		if c.keySum, err = r.u64(); err != nil {
			return err
		}
		if c.fing, err = r.u64(); err != nil {
			return err
		}
	}
	if len(r.b) != 0 {
		return errCorrupt
	}
	*s = *rebuilt
	return nil
}

// MarshalBinary encodes the sampler: parameters plus per-level states.
func (s *L0Sampler) MarshalBinary() ([]byte, error) {
	w := &wbuf{}
	w.u64(tagL0Sampler)
	w.u64(s.seed)
	w.u64(s.universe)
	w.u64(uint64(s.perLevel))
	w.u64(uint64(len(s.levels)))
	for _, lv := range s.levels {
		enc, err := lv.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.u64(uint64(len(enc)))
		w.b = append(w.b, enc...)
	}
	return w.b, nil
}

// UnmarshalBinary decodes a sampler encoded with MarshalBinary.
func (s *L0Sampler) UnmarshalBinary(data []byte) error {
	r := &rbuf{b: data}
	tag, err := r.u64()
	if err != nil || tag != tagL0Sampler {
		return fmt.Errorf("sketch: not an L0Sampler encoding: %w", errCorrupt)
	}
	seed, err := r.u64()
	if err != nil {
		return err
	}
	universe, err := r.u64()
	if err != nil {
		return err
	}
	perLevel, err := r.u64()
	if err != nil {
		return err
	}
	nLevels, err := r.u64()
	if err != nil {
		return err
	}
	rebuilt := NewL0Sampler(seed, universe, int(perLevel))
	if uint64(len(rebuilt.levels)) != nLevels {
		return errCorrupt
	}
	for j := range rebuilt.levels {
		ln, err := r.u64()
		if err != nil {
			return err
		}
		if uint64(len(r.b)) < ln {
			return errCorrupt
		}
		if err := rebuilt.levels[j].UnmarshalBinary(r.b[:ln]); err != nil {
			return err
		}
		r.b = r.b[ln:]
	}
	if len(r.b) != 0 {
		return errCorrupt
	}
	*s = *rebuilt
	return nil
}
