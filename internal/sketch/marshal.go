package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary serialization for the linear sketches. The encoding carries
// the construction parameters (seed + geometry) followed by the raw
// linear state; hash functions are reconstructed deterministically
// from the seed on decode. This is what makes the distributed protocol
// of the paper's introduction concrete: servers exchange sketch bytes,
// and a sketch decoded from bytes merges with any sketch built from
// the same seed.

// The magic constants identify the structure kind and version.
const (
	tagSketchB   uint64 = 0xd15c_0001
	tagL0Sampler uint64 = 0xd15c_0002 // v1: every level dense, u64 lengths
	tagKeyed     uint64 = 0xd15c_0004
	tagF0        uint64 = 0xd15c_0005
	// tagL0SamplerV2 is the compressed sampler encoding: varint level
	// lengths with zero-run suppression — a lazily-nil (or canceled-to-
	// zero) level encodes as a single 0 byte instead of a dense zero
	// sketch. v1 blobs still decode; encoding always emits v2.
	tagL0SamplerV2 uint64 = 0xd15c_0102
)

var errCorrupt = errors.New("sketch: corrupt serialized data")

type wbuf struct{ b []byte }

func (w *wbuf) u64(v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	w.b = append(w.b, tmp[:]...)
}

func (w *wbuf) i64(v int64) { w.u64(uint64(v)) }

func (w *wbuf) uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }

type rbuf struct{ b []byte }

func (r *rbuf) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, errCorrupt
	}
	v := binary.LittleEndian.Uint64(r.b[:8])
	r.b = r.b[8:]
	return v, nil
}

func (r *rbuf) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

func (r *rbuf) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, errCorrupt
	}
	r.b = r.b[n:]
	return v, nil
}

// MarshalBinary encodes the sketch: parameters plus linear state. The
// wire format is cell-interleaved (count, keySum, fing per cell),
// independent of the in-memory structure-of-arrays layout.
func (s *SketchB) MarshalBinary() ([]byte, error) {
	w := &wbuf{}
	w.u64(tagSketchB)
	w.u64(s.shape.seed)
	w.u64(uint64(s.shape.capacity))
	w.u64(uint64(s.shape.rows))
	w.u64(uint64(s.shape.cols))
	for i := range s.counts {
		w.i64(s.counts[i])
		w.u64(s.keySums[i])
		w.u64(s.fings[i])
	}
	return w.b, nil
}

// UnmarshalBinary decodes a sketch previously encoded with
// MarshalBinary, reconstructing hash functions from the stored seed.
// If the receiver already has a shape with matching parameters (e.g. a
// family-backed sketch being refilled over the wire), it is reused
// instead of re-deriving hashes and power tables.
func (s *SketchB) UnmarshalBinary(data []byte) error {
	rebuilt, err := unmarshalSketchB(data, s.shape)
	if err != nil {
		return err
	}
	rebuilt.gen = s.gen + 1 // whole-state replacement keeps gen monotonic
	*s = *rebuilt
	return nil
}

// unmarshalSketchB decodes a SketchB encoding. hint, when non-nil and
// matching the encoded parameters, supplies the shape; otherwise the
// shape is derived exactly as the constructor would, with the explicit
// geometry (which may differ from defaults) adopted afterwards.
func unmarshalSketchB(data []byte, hint *sketchBShape) (*SketchB, error) {
	r := &rbuf{b: data}
	tag, err := r.u64()
	if err != nil || tag != tagSketchB {
		return nil, fmt.Errorf("sketch: not a SketchB encoding: %w", errCorrupt)
	}
	seed, err := r.u64()
	if err != nil {
		return nil, err
	}
	capacity, err := r.u64()
	if err != nil {
		return nil, err
	}
	rows, err := r.u64()
	if err != nil {
		return nil, err
	}
	cols, err := r.u64()
	if err != nil {
		return nil, err
	}
	if rows == 0 || cols == 0 || rows > 16 || cols > 1<<30 {
		return nil, errCorrupt
	}
	shape := hint
	if shape == nil || shape.seed != seed || shape.capacity != int(capacity) ||
		shape.rows != int(rows) || shape.cols != int(cols) {
		shape = newSketchBShape(seed, int(capacity), SketchConfig{Rows: int(rows)})
		shape.cols = int(cols)
	}
	rebuilt := shape.instance()
	for i := range rebuilt.counts {
		if rebuilt.counts[i], err = r.i64(); err != nil {
			return nil, err
		}
		if rebuilt.keySums[i], err = r.u64(); err != nil {
			return nil, err
		}
		if rebuilt.fings[i], err = r.u64(); err != nil {
			return nil, err
		}
	}
	if len(r.b) != 0 {
		return nil, errCorrupt
	}
	return rebuilt, nil
}

// IsZero reports whether the sampler holds the zero vector's state:
// every level unmaterialized or canceled back to all-zero cells. A
// zero sampler is indistinguishable from a fresh one, which is what
// lets the compressed encodings suppress it entirely.
func (s *L0Sampler) IsZero() bool {
	for _, lv := range s.levels {
		if lv != nil && !lv.IsZero() {
			return false
		}
	}
	return true
}

// MarshalBinary encodes the sampler: parameters plus per-level states,
// in the v2 compressed layout — varint level lengths, with a zero (nil
// or canceled-to-zero) level encoded as a single 0 byte. Geometric
// sampling leaves most levels untouched, so this shrinks AGM-family
// states by orders of magnitude on the wire. The encoding is
// content-canonical: states with equal linear content (regardless of
// which zero levels happen to be materialized) encode identically.
func (s *L0Sampler) MarshalBinary() ([]byte, error) {
	w := &wbuf{}
	w.u64(tagL0SamplerV2)
	w.u64(s.fam.seed)
	w.u64(s.fam.universe)
	w.uvarint(uint64(s.fam.perLevel))
	w.uvarint(uint64(len(s.levels)))
	for _, lv := range s.levels {
		if lv == nil || lv.IsZero() {
			w.uvarint(0) // zero-run suppression
			continue
		}
		enc, err := lv.MarshalBinary()
		if err != nil {
			return nil, err
		}
		w.uvarint(uint64(len(enc)))
		w.b = append(w.b, enc...)
	}
	return w.b, nil
}

// UnmarshalBinary decodes a sampler encoded with MarshalBinary —
// either the current v2 layout or the dense v1 layout older blobs
// carry. If the receiver already belongs to a family with matching
// parameters — as when agm.Sketch.UnmarshalBinary refills the
// family-backed samplers its constructor allocated — that family (and
// its level shapes, hash functions, and power tables) is reused rather
// than re-derived per sampler.
func (s *L0Sampler) UnmarshalBinary(data []byte) error {
	r := &rbuf{b: data}
	tag, err := r.u64()
	if err != nil || (tag != tagL0Sampler && tag != tagL0SamplerV2) {
		return fmt.Errorf("sketch: not an L0Sampler encoding: %w", errCorrupt)
	}
	v2 := tag == tagL0SamplerV2
	length := (*rbuf).u64
	if v2 {
		length = (*rbuf).uvarint
	}
	seed, err := r.u64()
	if err != nil {
		return err
	}
	universe, err := r.u64()
	if err != nil {
		return err
	}
	perLevel, err := length(r)
	if err != nil {
		return err
	}
	nLevels, err := length(r)
	if err != nil {
		return err
	}
	fam := s.fam
	if fam == nil || fam.seed != seed || fam.universe != universe ||
		uint64(fam.perLevel) != perLevel {
		fam = NewL0Family(seed, universe, int(perLevel))
	}
	if uint64(len(fam.levels)) != nLevels {
		return errCorrupt
	}
	rebuilt := fam.NewSampler()
	for j := range rebuilt.levels {
		ln, err := length(r)
		if err != nil {
			return err
		}
		if ln == 0 && v2 {
			continue // suppressed zero level stays unmaterialized
		}
		if uint64(len(r.b)) < ln {
			return errCorrupt
		}
		lv, err := unmarshalSketchB(r.b[:ln], fam.levels[j])
		if err != nil {
			return err
		}
		rebuilt.levels[j] = lv
		r.b = r.b[ln:]
	}
	if len(r.b) != 0 {
		return errCorrupt
	}
	rebuilt.gen = s.gen + 1 // whole-state replacement keeps gen monotonic
	*s = *rebuilt
	return nil
}

// MarshalBinary encodes the keyed edge table: parameters plus the raw
// bucket accumulators. Hash functions and power tables are re-derived
// from the seed on decode. The wire format is bucket-interleaved
// (count, keySum, keyFing, edgeSum, edgeFing per bucket), independent
// of the in-memory structure-of-arrays layout.
func (t *KeyedEdgeSketch) MarshalBinary() ([]byte, error) {
	w := &wbuf{}
	w.u64(tagKeyed)
	w.u64(t.seed)
	w.u64(uint64(t.n))
	w.u64(uint64(t.rows))
	w.u64(uint64(t.cells))
	for i := range t.counts {
		w.i64(t.counts[i])
		w.u64(t.keySums[i])
		w.u64(t.keyFings[i])
		w.u64(t.edgeSums[i])
		w.u64(t.edgeFings[i])
	}
	return w.b, nil
}

// UnmarshalBinary decodes a table encoded with MarshalBinary.
func (t *KeyedEdgeSketch) UnmarshalBinary(data []byte) error {
	r := &rbuf{b: data}
	tag, err := r.u64()
	if err != nil || tag != tagKeyed {
		return fmt.Errorf("sketch: not a KeyedEdgeSketch encoding: %w", errCorrupt)
	}
	var seed, n, rows, cells uint64
	for _, dst := range []*uint64{&seed, &n, &rows, &cells} {
		if *dst, err = r.u64(); err != nil {
			return err
		}
	}
	if n == 0 || n > 1<<32 || rows == 0 || rows > 16 || cells == 0 || cells > 1<<30 {
		return errCorrupt
	}
	rebuilt := newKeyedEdgeSketchGeom(seed, int(n), int(rows), int(cells))
	for i := range rebuilt.counts {
		if rebuilt.counts[i], err = r.i64(); err != nil {
			return err
		}
		for _, dst := range []*uint64{
			&rebuilt.keySums[i], &rebuilt.keyFings[i],
			&rebuilt.edgeSums[i], &rebuilt.edgeFings[i],
		} {
			if *dst, err = r.u64(); err != nil {
				return err
			}
		}
	}
	if len(r.b) != 0 {
		return errCorrupt
	}
	rebuilt.gen = t.gen + 1 // whole-state replacement keeps gen monotonic
	*t = *rebuilt
	return nil
}

// MarshalBinary encodes the F0 estimator: parameters plus the field
// accumulators of every level.
func (f *F0) MarshalBinary() ([]byte, error) {
	w := &wbuf{}
	w.u64(tagF0)
	w.u64(f.seed)
	w.u64(uint64(f.levels))
	w.u64(uint64(f.buckets))
	for j := range f.acc {
		for _, v := range f.acc[j] {
			w.u64(v)
		}
	}
	return w.b, nil
}

// UnmarshalBinary decodes an estimator encoded with MarshalBinary.
func (f *F0) UnmarshalBinary(data []byte) error {
	r := &rbuf{b: data}
	tag, err := r.u64()
	if err != nil || tag != tagF0 {
		return fmt.Errorf("sketch: not an F0 encoding: %w", errCorrupt)
	}
	seed, err := r.u64()
	if err != nil {
		return err
	}
	levels, err := r.u64()
	if err != nil {
		return err
	}
	buckets, err := r.u64()
	if err != nil {
		return err
	}
	if levels == 0 || levels > 256 {
		return errCorrupt
	}
	rebuilt := newF0Geom(seed, int(levels))
	if uint64(rebuilt.buckets) != buckets {
		return errCorrupt
	}
	for j := range rebuilt.acc {
		for b := range rebuilt.acc[j] {
			if rebuilt.acc[j][b], err = r.u64(); err != nil {
				return err
			}
		}
	}
	if len(r.b) != 0 {
		return errCorrupt
	}
	*f = *rebuilt
	return nil
}
