// Package sketch implements the linear sketching primitives of
// Kapralov–Woodruff (PODC'14):
//
//   - Cell: one-sparse recovery over a signed integer vector, the atom
//     underlying everything else.
//   - SketchB: exact recovery of B-sparse signals (the paper's
//     SKETCH_B / DECODE pair, Theorem 8 [CM06]), realized as an
//     IBLT-style peeling structure. It is a linear function of the
//     input vector: sketches of x and y sum to a sketch of x+y.
//   - F0: a distinct-elements estimator (Theorem 9 [KNW10]) used as the
//     decodability guard: a SketchB is declared "not decodable" when
//     the estimated support size exceeds 2B.
//   - L0Sampler: recovery of one support element of a signed vector via
//     geometric subsampling, used by the AGM spanning-forest sketch.
//   - KeyedEdgeSketch: the "linear hash table" H^u_j of Algorithm 2,
//     which recovers one incident edge per neighboring key.
//
// All structures are linear: they support Add (stream updates), Merge
// (summing sketches of different vectors) and Sub (subtracting an edge
// set, as required when Algorithm 3 deletes E_low from the AGM sketch).
package sketch

import (
	"dynstream/internal/field"
)

// Cell is a one-sparse recovery cell for a signed integer vector x
// indexed by uint64 keys. It maintains
//
//	count  = Σ_i x_i          (as int64)
//	keySum = Σ_i x_i · i      (mod p)
//	fing   = Σ_i x_i · r^i    (mod p)
//
// for a random base r. If x has exactly one nonzero coordinate (i, w)
// the cell decodes it exactly; the fingerprint test rejects any other
// vector except with probability ≤ maxKey/p (a polynomial-identity
// test in r).
type Cell struct {
	count  int64
	keySum uint64
	fing   uint64
}

// Update folds (key, delta) into the cell. fkey must equal r^key for the
// sketch's fingerprint base; callers compute it once per stream update
// and share it across rows.
func (c *Cell) Update(key uint64, delta int64, fkey uint64) {
	c.count += delta
	d := field.FromInt64(delta)
	c.keySum = field.Add(c.keySum, field.Mul(d, field.Reduce(key)))
	c.fing = field.Add(c.fing, field.Mul(d, fkey))
}

// Merge adds another cell (a sketch of a different vector over the same
// randomness) into c.
func (c *Cell) Merge(o Cell) {
	c.count += o.count
	c.keySum = field.Add(c.keySum, o.keySum)
	c.fing = field.Add(c.fing, o.fing)
}

// Sub subtracts another cell from c.
func (c *Cell) Sub(o Cell) {
	c.count -= o.count
	c.keySum = field.Sub(c.keySum, o.keySum)
	c.fing = field.Sub(c.fing, o.fing)
}

// IsZero reports whether the cell is (whp) a sketch of the zero vector.
func (c *Cell) IsZero() bool {
	return c.count == 0 && c.keySum == 0 && c.fing == 0
}

// Decode attempts one-sparse recovery with fingerprint base r. On
// success it returns the key and its (nonzero) net weight.
func (c *Cell) Decode(r uint64) (key uint64, weight int64, ok bool) {
	if c.count == 0 {
		return 0, 0, false
	}
	cf := field.FromInt64(c.count)
	key = field.Mul(c.keySum, field.Inv(cf))
	if field.Mul(cf, field.Pow(r, key)) != c.fing {
		return 0, 0, false
	}
	return key, c.count, true
}

// DecodeTable is Decode with the fingerprint power computed through a
// precomputed table for the base — the fast path used by peeling
// decoders, which evaluate one power per cell per sweep. The result is
// bit-identical to Decode(tab.Base()).
func (c *Cell) DecodeTable(tab *field.PowTable) (key uint64, weight int64, ok bool) {
	if c.count == 0 {
		return 0, 0, false
	}
	cf := field.FromInt64(c.count)
	key = field.Mul(c.keySum, field.Inv(cf))
	if field.Mul(cf, tab.Pow(key)) != c.fing {
		return 0, 0, false
	}
	return key, c.count, true
}
