package sketch

import (
	"testing"
)

func TestSketchBMarshalRoundTrip(t *testing.T) {
	s := NewSketchB(42, 16)
	want := map[uint64]int64{5: 1, 777: -3, 123456: 9}
	for k, v := range want {
		s.Add(k, v)
	}
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back SketchB
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	got, ok := back.Decode()
	if !ok || len(got) != len(want) {
		t.Fatalf("decode after round trip: %v %v", got, ok)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %d: %d want %d", k, got[k], v)
		}
	}
}

func TestSketchBMarshalThenMerge(t *testing.T) {
	// The distributed protocol: shard sketches travel as bytes, then
	// merge at the coordinator.
	a := NewSketchB(7, 8)
	b := NewSketchB(7, 8)
	a.Add(1, 1)
	b.Add(2, 2)
	b.Add(1, -1) // cross-shard deletion
	enc, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var remote SketchB
	if err := remote.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(&remote); err != nil {
		t.Fatal(err)
	}
	got, ok := a.Decode()
	if !ok || len(got) != 1 || got[2] != 2 {
		t.Errorf("merged decode = %v, %v", got, ok)
	}
}

func TestSketchBUnmarshalCorrupt(t *testing.T) {
	var s SketchB
	if err := s.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("short data accepted")
	}
	good := NewSketchB(1, 4)
	enc, _ := good.MarshalBinary()
	if err := s.UnmarshalBinary(enc[:len(enc)-5]); err == nil {
		t.Error("truncated data accepted")
	}
	enc[0] ^= 0xff // break the tag
	if err := s.UnmarshalBinary(enc); err == nil {
		t.Error("wrong tag accepted")
	}
}

func TestL0MarshalRoundTrip(t *testing.T) {
	s := NewL0Sampler(9, 1<<20, 4)
	s.Add(314, 2)
	s.Add(2718, 5)
	enc, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back L0Sampler
	if err := back.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	k, w, ok := back.Sample()
	if !ok || (k != 314 && k != 2718) {
		t.Errorf("sample after round trip: (%d,%d,%v)", k, w, ok)
	}
	// And it still merges with a live sampler of the same seed.
	live := NewL0Sampler(9, 1<<20, 4)
	live.Add(314, -2)
	live.Add(2718, -5)
	if err := back.Merge(live); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := back.Sample(); ok {
		t.Error("cancelled sampler still sampled")
	}
}

func TestL0UnmarshalCorrupt(t *testing.T) {
	var s L0Sampler
	if err := s.UnmarshalBinary(nil); err == nil {
		t.Error("empty data accepted")
	}
	good := NewL0Sampler(1, 1<<10, 2)
	enc, _ := good.MarshalBinary()
	if err := s.UnmarshalBinary(enc[:len(enc)-1]); err == nil {
		t.Error("truncated data accepted")
	}
}

func TestKeyedEdgeSketchMarshalRoundTrip(t *testing.T) {
	a := NewKeyedEdgeSketch(71, 50, 16)
	b := NewKeyedEdgeSketch(71, 50, 16)
	for i := 0; i < 30; i++ {
		a.Add(i%7, 10+i%40, 1)
		b.Add((i+3)%7, 10+(i*5)%40, 1)
	}
	enc, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var shipped KeyedEdgeSketch
	if err := shipped.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	// The shipped table must merge and decode exactly like the local one.
	ref := NewKeyedEdgeSketch(71, 50, 16)
	for i := 0; i < 30; i++ {
		ref.Add(i%7, 10+i%40, 1)
		ref.Add((i+3)%7, 10+(i*5)%40, 1)
	}
	if err := a.Merge(&shipped); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 50; v++ {
		gw, gok := a.DecodeKey(v)
		ww, wok := ref.DecodeKey(v)
		if gok != wok || (gok && gw != ww) {
			t.Fatalf("DecodeKey(%d): got (%d,%v), want (%d,%v)", v, gw, gok, ww, wok)
		}
	}
	if err := shipped.UnmarshalBinary([]byte("garbage")); err == nil {
		t.Error("accepted garbage")
	}
}

func TestF0MarshalRoundTrip(t *testing.T) {
	a := NewF0(81, 1<<12)
	b := NewF0(81, 1<<12)
	for i := uint64(0); i < 200; i++ {
		a.Add(i, 1)
		b.Add(i+150, 1)
	}
	enc, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var shipped F0
	if err := shipped.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if got, want := shipped.Estimate(), b.Estimate(); got != want {
		t.Fatalf("estimate changed over the wire: %v vs %v", got, want)
	}
	// Merging the shipped state must equal merging the original.
	ref := NewF0(81, 1<<12)
	for i := uint64(0); i < 200; i++ {
		ref.Add(i, 1)
		ref.Add(i+150, 1)
	}
	a.Merge(&shipped)
	if got, want := a.Estimate(), ref.Estimate(); got != want {
		t.Fatalf("merged estimate %v, want %v", got, want)
	}
	if err := shipped.UnmarshalBinary(nil); err == nil {
		t.Error("accepted empty input")
	}
}
