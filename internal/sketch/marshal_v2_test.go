package sketch

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// encodeL0V1 reproduces the legacy dense v1 sampler layout (u64 level
// lengths, every level materialized — nil levels as dense zero
// sketches), so the decoder's back-compat path stays pinned even
// though the encoder only emits v2 now.
func encodeL0V1(t *testing.T, s *L0Sampler) []byte {
	t.Helper()
	w := &wbuf{}
	w.u64(tagL0Sampler)
	w.u64(s.fam.seed)
	w.u64(s.fam.universe)
	w.u64(uint64(s.fam.perLevel))
	w.u64(uint64(len(s.levels)))
	for j, lv := range s.levels {
		if lv == nil {
			lv = s.fam.levels[j].instance()
		}
		enc, err := lv.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		w.u64(uint64(len(enc)))
		w.b = append(w.b, enc...)
	}
	return w.b
}

func TestL0MarshalV2SuppressesZeroLevels(t *testing.T) {
	s := NewL0Sampler(7, 1<<20, 4)
	// A handful of keys: geometric levels leave most levels untouched.
	for _, k := range []uint64{3, 99, 12345, 777777} {
		s.Add(k, 2)
	}
	v2, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	v1 := encodeL0V1(t, s)
	if len(v2) >= len(v1)/2 {
		t.Fatalf("v2 encoding %d bytes, dense v1 %d bytes — zero-run suppression missing", len(v2), len(v1))
	}

	// The legacy blob still decodes, to a state that re-encodes
	// identically to the live one (content-canonical).
	var fromV1 L0Sampler
	if err := fromV1.UnmarshalBinary(v1); err != nil {
		t.Fatalf("v1 blob no longer decodes: %v", err)
	}
	re, err := fromV1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, v2) {
		t.Fatal("v1-decoded state re-encodes differently from the live state")
	}

	// And the v2 round trip is exact.
	var fromV2 L0Sampler
	if err := fromV2.UnmarshalBinary(v2); err != nil {
		t.Fatal(err)
	}
	k1, w1, ok1 := s.Sample()
	k2, w2, ok2 := fromV2.Sample()
	if k1 != k2 || w1 != w2 || ok1 != ok2 {
		t.Fatalf("v2 round trip changed sampling: (%d,%d,%v) vs (%d,%d,%v)", k1, w1, ok1, k2, w2, ok2)
	}
}

func TestL0MarshalCanonicalAcrossMaterialization(t *testing.T) {
	// Two states with equal content but different materialization: one
	// fresh, one whose updates canceled back to zero. Their encodings
	// must match byte for byte (the property the remote-vs-serial
	// equivalence tests lean on).
	fam := NewL0Family(11, 1<<16, 4)
	fresh := fam.NewSampler()
	canceled := fam.NewSampler()
	for _, k := range []uint64{1, 2, 70} {
		canceled.Add(k, 5)
		canceled.Add(k, -5)
	}
	a, err := fresh.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := canceled.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("canceled-to-zero state encodes differently from a fresh state")
	}
}

func TestL0MarshalV2RejectsGarbage(t *testing.T) {
	valid := func() []byte {
		s := NewL0Sampler(3, 1<<10, 4)
		s.Add(42, 1)
		enc, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}()
	var s L0Sampler
	if err := s.UnmarshalBinary(valid[:len(valid)-1]); err == nil {
		t.Error("accepted truncated v2 blob")
	}
	bad := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(bad[:8], 0xdead)
	if err := s.UnmarshalBinary(bad); err == nil {
		t.Error("accepted unknown tag")
	}
}
