package dynstream

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"dynstream/internal/agm"
	"dynstream/internal/dynnet"
	"dynstream/internal/obs"
	"dynstream/internal/spanner"
	"dynstream/internal/sparsify"
)

// Checkpoint/restore for live handles. Every construction in this
// package is a linear sketch with a canonical binary encoding, which
// makes durable snapshots nearly free: a checkpoint is the target's
// serialized live state (configuration, seed, and sketch contents —
// for the two-pass targets, also the live update log) wrapped in a
// versioned, CRC-framed container:
//
//	checkpoint := magic("DSCKPT1\n") section*
//	section    := kind(1) len(uvarint) payload crc32(4, LE)
//
// The CRC covers the section's kind, length bytes, and payload, so a
// snapshot truncated or damaged at any byte is rejected with
// ErrBadCheckpoint instead of restoring silently wrong state. The
// final section is an empty end marker; a file that stops before it
// was cut off mid-write.
//
// The meta section names the state kind (the same numbering the dynnet
// wire protocol uses), the vertex count, and the handle's applied-
// update count; the state section holds the opaque live-state blob.
// The base stream is deliberately NOT part of a checkpoint — Restore
// re-attaches the caller's source, and the applied-update count tells
// the caller exactly which suffix of its own update log to replay:
//
//	f, _ := os.Create("state.ckpt")
//	err := h.Checkpoint(f)            // at any point in the stream
//	...
//	h2, _ := dynstream.Restore(ctx, f, src, target)
//	h2.Apply(log[h2.AppliedUpdates():]) // replay the suffix
//
// after which every Query of h2 is bit-identical to an uninterrupted
// handle's — linearity makes the cut invisible.

// checkpointMagic is the container preamble; the trailing digit is the
// container format version.
const checkpointMagic = "DSCKPT1\n"

// The checkpoint section kinds.
const (
	sectionMeta  = 1 // state kind, n, applied-update count
	sectionState = 2 // the live state's serialized contents
	sectionEnd   = 3 // empty end marker (truncation guard)
)

// ErrBadCheckpoint reports an invalid, corrupt, or truncated
// checkpoint, or one whose contents do not fit the restoring target
// and source.
var ErrBadCheckpoint = errors.New("dynstream: invalid checkpoint")

// checkpointMeta is the decoded meta section.
type checkpointMeta struct {
	kind    dynnet.StateKind
	n       int
	applied int64
}

// writeSection frames one section: kind, uvarint length, payload, and
// the CRC over all of it.
func writeSection(w *bufio.Writer, kind byte, payload []byte) error {
	var hdr []byte
	hdr = append(hdr, kind)
	hdr = binary.AppendUvarint(hdr, uint64(len(payload)))
	crc := crc32.ChecksumIEEE(hdr)
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	_, err := w.Write(tail[:])
	return err
}

// readSection reads and validates one section.
func readSection(br *bufio.Reader) (kind byte, payload []byte, err error) {
	kind, err = br.ReadByte()
	if err != nil {
		return 0, nil, fmt.Errorf("%w: truncated before a section", ErrBadCheckpoint)
	}
	crc := crc32.NewIEEE()
	crc.Write([]byte{kind})
	var ln uint64
	var lnBuf []byte
	for shift := uint(0); ; shift += 7 {
		if shift >= 64 {
			return 0, nil, fmt.Errorf("%w: unterminated section length", ErrBadCheckpoint)
		}
		b, err := br.ReadByte()
		if err != nil {
			return 0, nil, fmt.Errorf("%w: truncated section length", ErrBadCheckpoint)
		}
		lnBuf = append(lnBuf, b)
		ln |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
	}
	crc.Write(lnBuf)
	if ln > dynnet.MaxFramePayload {
		return 0, nil, fmt.Errorf("%w: section of %d bytes exceeds limit", ErrBadCheckpoint, ln)
	}
	payload = make([]byte, ln)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated section payload", ErrBadCheckpoint)
	}
	crc.Write(payload)
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated section checksum", ErrBadCheckpoint)
	}
	if got, want := binary.LittleEndian.Uint32(tail[:]), crc.Sum32(); got != want {
		return 0, nil, fmt.Errorf("%w: section checksum mismatch (got %08x, want %08x)", ErrBadCheckpoint, got, want)
	}
	return kind, payload, nil
}

// Checkpoint writes a durable snapshot of the live state to w. The
// handle's mutex is held for the duration, so a checkpoint taken while
// other goroutines Apply concurrently is a consistent cut: it contains
// exactly the batches whose Apply returned before the snapshot, never
// a torn batch. The snapshot does not include the base stream; see
// Restore for how it is re-attached.
func (h *Handle[R]) Checkpoint(w io.Writer) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	sp := h.o.tracer.Span("checkpoint/write")
	kind, blob, err := h.live.snapshot()
	if err != nil {
		return fmt.Errorf("dynstream: checkpoint: %w", err)
	}
	defer func() {
		sp.End(obs.A("bytes", int64(len(blob))), obs.A("applied", h.applied))
	}()
	var meta []byte
	meta = append(meta, byte(kind))
	meta = binary.AppendUvarint(meta, uint64(h.n))
	meta = binary.AppendUvarint(meta, uint64(h.applied))
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	if err := writeSection(bw, sectionMeta, meta); err != nil {
		return err
	}
	if err := writeSection(bw, sectionState, blob); err != nil {
		return err
	}
	if err := writeSection(bw, sectionEnd, nil); err != nil {
		return err
	}
	return bw.Flush()
}

// CheckpointFile writes a Checkpoint snapshot atomically to path: the
// container is written to a temporary file in the same directory, fsynced,
// and renamed into place, so a crash mid-write leaves either the previous
// snapshot or none — never a torn file. ErrBadCheckpoint on open is then
// always a damaged disk, not an interrupted writer.
func CheckpointFile[R any](h *Handle[R], path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := h.Checkpoint(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// readCheckpoint decodes the container: magic, meta, state, end.
func readCheckpoint(r io.Reader) (checkpointMeta, []byte, error) {
	var meta checkpointMeta
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != checkpointMagic {
		return meta, nil, fmt.Errorf("%w: not a checkpoint (bad magic)", ErrBadCheckpoint)
	}
	kind, payload, err := readSection(br)
	if err != nil {
		return meta, nil, err
	}
	if kind != sectionMeta {
		return meta, nil, fmt.Errorf("%w: first section is %d, want meta", ErrBadCheckpoint, kind)
	}
	if len(payload) < 1 {
		return meta, nil, fmt.Errorf("%w: empty meta section", ErrBadCheckpoint)
	}
	meta.kind = dynnet.StateKind(payload[0])
	rest := payload[1:]
	n, ln := binary.Uvarint(rest)
	if ln <= 0 {
		return meta, nil, fmt.Errorf("%w: bad vertex count", ErrBadCheckpoint)
	}
	rest = rest[ln:]
	applied, ln := binary.Uvarint(rest)
	if ln <= 0 || len(rest[ln:]) != 0 {
		return meta, nil, fmt.Errorf("%w: bad applied-update count", ErrBadCheckpoint)
	}
	meta.n = int(n)
	meta.applied = int64(applied)
	kind, state, err := readSection(br)
	if err != nil {
		return meta, nil, err
	}
	if kind != sectionState {
		return meta, nil, fmt.Errorf("%w: second section is %d, want state", ErrBadCheckpoint, kind)
	}
	kind, payload, err = readSection(br)
	if err != nil {
		return meta, nil, err
	}
	if kind != sectionEnd || len(payload) != 0 {
		return meta, nil, fmt.Errorf("%w: missing end marker", ErrBadCheckpoint)
	}
	return meta, state, nil
}

// Restore reads a Checkpoint snapshot from r and returns a live Handle
// over it, with src re-attached as the base stream. src must be the
// same stream (same vertex count and, for multi-pass targets, same
// replayable contents) the checkpointed handle was opened over; the
// snapshot's own configuration and seed are authoritative — the
// target's Config/Seed fields are not consulted, only its type. After
// Apply-ing the suffix of updates past AppliedUpdates(), every Query
// is bit-identical to an uninterrupted handle's.
//
// Restore accepts the same options as Open (worker counts, batch size,
// decode cache); remote and weight-class options are rejected exactly
// as Open rejects them.
func Restore[R any](ctx context.Context, r io.Reader, src Source, target Target[R], opts ...Option) (*Handle[R], error) {
	_ = ctx // restores are offline: no stream pass runs until the first Query
	if src == nil {
		return nil, fmt.Errorf("%w: nil source", ErrBadConfig)
	}
	if target == nil {
		return nil, fmt.Errorf("%w: nil target", ErrBadConfig)
	}
	o := &buildOptions{}
	for _, opt := range opts {
		if opt != nil {
			opt(o)
		}
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := o.validateLive(); err != nil {
		return nil, err
	}
	if target.Passes() > 1 && !CanReplay(src) {
		return nil, fmt.Errorf("dynstream: %T needs %d passes over the stream: %w",
			target, target.Passes(), ErrNotReplayable)
	}
	// As in Open, the tracer (with any WithProgress observer) persists
	// for the restored handle's lifetime.
	tr, _ := o.effectiveTracer()
	o.tracer = tr
	sp := tr.Span("checkpoint/restore")
	meta, state, err := readCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if meta.n != src.N() {
		return nil, fmt.Errorf("%w: checkpoint has n=%d, source has n=%d", ErrBadCheckpoint, meta.n, src.N())
	}
	live, err := target.restoreLive(src, o, meta.kind, state)
	if err != nil {
		return nil, err
	}
	live.enableCache(o.cacheOn())
	sp.End(obs.A("bytes", int64(len(state))), obs.A("applied", meta.applied))
	return &Handle[R]{n: src.N(), src: src, o: o, live: live, applied: meta.applied}, nil
}

// wrongKind is the shared kind-mismatch error of the restoreLive
// implementations.
func wrongKind(got dynnet.StateKind, target string) error {
	return fmt.Errorf("%w: checkpoint holds a %v state, target wants %s", ErrBadCheckpoint, got, target)
}

// checkpointN cross-checks the decoded state's own vertex count
// against the source (the meta section was already checked; the state
// blob carries its own n, and the two must agree).
func checkpointN(stateN, srcN int) error {
	if stateN != srcN {
		return fmt.Errorf("%w: state has n=%d, source has n=%d", ErrBadCheckpoint, stateN, srcN)
	}
	return nil
}

// liveStream asserts the replayable-stream view the two-pass restores
// need (Restore's CanReplay gate has already run; this guards the
// concrete interface).
func liveStream(src Source) (Stream, error) {
	st, ok := src.(Stream)
	if !ok {
		return nil, fmt.Errorf("dynstream: source %T is not a replayable stream: %w", src, ErrNotReplayable)
	}
	return st, nil
}

// ---- per-target snapshot / restore ----

func (l forestLive) snapshot() (dynnet.StateKind, []byte, error) {
	b, err := l.s.MarshalBinary()
	return dynnet.KindForest, b, err
}

func (t ForestTarget) restoreLive(src Source, o *buildOptions, kind dynnet.StateKind, state []byte) (liveState[*ForestSketch], error) {
	if kind != dynnet.KindForest {
		return nil, wrongKind(kind, "a forest sketch")
	}
	s := &agm.Sketch{}
	if err := s.UnmarshalBinary(state); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if err := checkpointN(s.N(), src.N()); err != nil {
		return nil, err
	}
	return forestLive{s}, nil
}

func (l kconnLive) snapshot() (dynnet.StateKind, []byte, error) {
	b, err := l.kc.MarshalBinary()
	return dynnet.KindKConn, b, err
}

func (t KConnectivityTarget) restoreLive(src Source, o *buildOptions, kind dynnet.StateKind, state []byte) (liveState[*KConnectivity], error) {
	if kind != dynnet.KindKConn {
		return nil, wrongKind(kind, "a k-connectivity certificate")
	}
	kc := &agm.KConnectivity{}
	if err := kc.UnmarshalBinary(state); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if err := checkpointN(kc.N(), src.N()); err != nil {
		return nil, err
	}
	return kconnLive{kc}, nil
}

func (l bipLive) snapshot() (dynnet.StateKind, []byte, error) {
	b, err := l.b.MarshalBinary()
	return dynnet.KindBip, b, err
}

func (t BipartitenessTarget) restoreLive(src Source, o *buildOptions, kind dynnet.StateKind, state []byte) (liveState[*Bipartiteness], error) {
	if kind != dynnet.KindBip {
		return nil, wrongKind(kind, "a bipartiteness tester")
	}
	b := &agm.Bipartiteness{}
	if err := b.UnmarshalBinary(state); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if err := checkpointN(b.N(), src.N()); err != nil {
		return nil, err
	}
	return bipLive{b}, nil
}

func (l msfLive) snapshot() (dynnet.StateKind, []byte, error) {
	b, err := l.m.MarshalBinary()
	return dynnet.KindMSF, b, err
}

func (t MSFTarget) restoreLive(src Source, o *buildOptions, kind dynnet.StateKind, state []byte) (liveState[*MSF], error) {
	if kind != dynnet.KindMSF {
		return nil, wrongKind(kind, "an MSF sketch")
	}
	// The blob carries the checkpointed handle's WMax (Open required it
	// to be explicit), so the target's own WMax is not consulted.
	m := &agm.MSF{}
	if err := m.UnmarshalBinary(state); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if err := checkpointN(m.N(), src.N()); err != nil {
		return nil, err
	}
	return msfLive{m}, nil
}

func (l additiveLive) snapshot() (dynnet.StateKind, []byte, error) {
	b, err := l.a.MarshalBinary()
	return dynnet.KindAdditive, b, err
}

func (t AdditiveTarget) restoreLive(src Source, o *buildOptions, kind dynnet.StateKind, state []byte) (liveState[*AdditiveResult], error) {
	if kind != dynnet.KindAdditive {
		return nil, wrongKind(kind, "an additive spanner")
	}
	a := &spanner.Additive{}
	if err := a.UnmarshalBinary(state); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	if err := checkpointN(a.N(), src.N()); err != nil {
		return nil, err
	}
	return additiveLive{a}, nil
}

func (l twoPassLive) snapshot() (dynnet.StateKind, []byte, error) {
	b, err := l.tp.MarshalLive()
	return dynnet.KindTwoPass, b, err
}

func (t SpannerTarget) restoreLive(src Source, o *buildOptions, kind dynnet.StateKind, state []byte) (liveState[*SpannerResult], error) {
	if kind != dynnet.KindTwoPass {
		return nil, wrongKind(kind, "a two-pass spanner")
	}
	st, err := liveStream(src)
	if err != nil {
		return nil, err
	}
	tp := &spanner.TwoPass{}
	if err := tp.RestoreLive(st, state); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	return twoPassLive{tp}, nil
}

func (l sparsifyLive) snapshot() (dynnet.StateKind, []byte, error) {
	b, err := l.ls.MarshalLive()
	return dynnet.KindGrid, b, err
}

func (t SparsifierTarget) restoreLive(src Source, o *buildOptions, kind dynnet.StateKind, state []byte) (liveState[*SparsifierResult], error) {
	if kind != dynnet.KindGrid {
		return nil, wrongKind(kind, "a sparsifier")
	}
	st, err := liveStream(src)
	if err != nil {
		return nil, err
	}
	ls, err := sparsify.RestoreLive(st, state)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadCheckpoint, err)
	}
	return sparsifyLive{ls}, nil
}
