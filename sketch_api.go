package dynstream

import (
	"fmt"

	"dynstream/internal/sparsify"
	"dynstream/internal/stream"
)

// Sketch is the uniform linear-sketch surface: every construction in
// this package — the AGM family, both spanner states, the sparsifier's
// oracle grid — exposes the same five operations through a view, which
// is what makes them interchangeable in distributed pipelines:
//
//	ingest a shard  →  MarshalBinary  →  (wire)  →  UnmarshalBinary  →  Merge
//
// Views wrap the concrete states (the *View constructors below); the
// wrapped state remains usable directly, and mutations through either
// surface are visible to both. Merge requires the other Sketch to be
// the same kind of view over a state built from the same seed and
// parameters.
type Sketch interface {
	// N returns the vertex count of the sketched graph.
	N() int
	// Add folds one stream update into the state.
	Add(Update) error
	// AddBatch folds a batch; bit-identical to Add per element.
	AddBatch([]Update) error
	// Merge adds another state built from the same randomness; the
	// result sketches the union of both update streams.
	Merge(Sketch) error
	// MarshalBinary encodes the state for the wire.
	MarshalBinary() ([]byte, error)
	// UnmarshalBinary replaces the state with a decoded one.
	UnmarshalBinary([]byte) error
}

// OracleGrid is the mergeable sketch state of the sparsifier's robust-
// connectivity oracle grid (Algorithm 4).
type OracleGrid = sparsify.Grid

// NewOracleGrid creates the oracle-grid sketch state for a graph on n
// vertices.
func NewOracleGrid(n int, cfg EstimateConfig) (*OracleGrid, error) {
	return sparsify.NewGrid(n, cfg)
}

func mergeMismatch(dst, src Sketch) error {
	return fmt.Errorf("%w: cannot merge %T into %T", ErrBadConfig, src, dst)
}

// forestView adapts *ForestSketch.
type forestView struct{ s *ForestSketch }

// ForestSketchView wraps an AGM connectivity sketch as a Sketch.
func ForestSketchView(s *ForestSketch) Sketch { return forestView{s} }

func (v forestView) N() int                         { return v.s.N() }
func (v forestView) Add(u Update) error             { v.s.AddUpdate(u); return nil }
func (v forestView) AddBatch(b []Update) error      { v.s.AddBatch(b); return nil }
func (v forestView) MarshalBinary() ([]byte, error) { return v.s.MarshalBinary() }
func (v forestView) UnmarshalBinary(d []byte) error { return v.s.UnmarshalBinary(d) }
func (v forestView) Merge(o Sketch) error {
	ov, ok := o.(forestView)
	if !ok {
		return mergeMismatch(v, o)
	}
	return v.s.Merge(ov.s)
}

// kconnView adapts *KConnectivity.
type kconnView struct{ s *KConnectivity }

// KConnectivityView wraps a k-connectivity certificate sketch as a
// Sketch.
func KConnectivityView(s *KConnectivity) Sketch { return kconnView{s} }

func (v kconnView) N() int                         { return v.s.N() }
func (v kconnView) Add(u Update) error             { v.s.AddUpdate(u); return nil }
func (v kconnView) AddBatch(b []Update) error      { v.s.AddBatch(b); return nil }
func (v kconnView) MarshalBinary() ([]byte, error) { return v.s.MarshalBinary() }
func (v kconnView) UnmarshalBinary(d []byte) error { return v.s.UnmarshalBinary(d) }
func (v kconnView) Merge(o Sketch) error {
	ov, ok := o.(kconnView)
	if !ok {
		return mergeMismatch(v, o)
	}
	return v.s.Merge(ov.s)
}

// bipView adapts *Bipartiteness.
type bipView struct{ s *Bipartiteness }

// BipartitenessView wraps a bipartiteness tester as a Sketch.
func BipartitenessView(s *Bipartiteness) Sketch { return bipView{s} }

func (v bipView) N() int                         { return v.s.N() }
func (v bipView) Add(u Update) error             { v.s.AddUpdate(u); return nil }
func (v bipView) AddBatch(b []Update) error      { v.s.AddBatch(b); return nil }
func (v bipView) MarshalBinary() ([]byte, error) { return v.s.MarshalBinary() }
func (v bipView) UnmarshalBinary(d []byte) error { return v.s.UnmarshalBinary(d) }
func (v bipView) Merge(o Sketch) error {
	ov, ok := o.(bipView)
	if !ok {
		return mergeMismatch(v, o)
	}
	return v.s.Merge(ov.s)
}

// msfView adapts *MSF.
type msfView struct{ s *MSF }

// MSFView wraps an approximate-MSF sketch as a Sketch.
func MSFView(s *MSF) Sketch { return msfView{s} }

func (v msfView) N() int                         { return v.s.N() }
func (v msfView) Add(u Update) error             { v.s.AddUpdate(u); return nil }
func (v msfView) AddBatch(b []Update) error      { v.s.AddBatch(b); return nil }
func (v msfView) MarshalBinary() ([]byte, error) { return v.s.MarshalBinary() }
func (v msfView) UnmarshalBinary(d []byte) error { return v.s.UnmarshalBinary(d) }
func (v msfView) Merge(o Sketch) error {
	ov, ok := o.(msfView)
	if !ok {
		return mergeMismatch(v, o)
	}
	return v.s.Merge(ov.s)
}

// additiveView adapts *AdditiveSpanner.
type additiveView struct{ s *AdditiveSpanner }

// AdditiveSpannerView wraps the single-pass additive spanner state as
// a Sketch.
func AdditiveSpannerView(s *AdditiveSpanner) Sketch { return additiveView{s} }

func (v additiveView) N() int                         { return v.s.N() }
func (v additiveView) Add(u Update) error             { return v.s.Update(u) }
func (v additiveView) AddBatch(b []Update) error      { return v.s.AddBatch(b) }
func (v additiveView) MarshalBinary() ([]byte, error) { return v.s.MarshalBinary() }
func (v additiveView) UnmarshalBinary(d []byte) error { return v.s.UnmarshalBinary(d) }
func (v additiveView) Merge(o Sketch) error {
	ov, ok := o.(additiveView)
	if !ok {
		return mergeMismatch(v, o)
	}
	return v.s.Merge(ov.s)
}

// twoPassView adapts *TwoPassSpanner, one pass at a time: the two-pass
// state is a different linear sketch in each pass, so each pass gets
// its own Sketch view (ingest routes to Pass1Update or Pass2Update,
// merge to MergePass1 or MergePass2).
type twoPassView struct {
	s     *TwoPassSpanner
	pass2 bool
}

// TwoPassPass1View wraps the first-pass state of a two-pass spanner as
// a Sketch.
func TwoPassPass1View(s *TwoPassSpanner) Sketch { return twoPassView{s, false} }

// TwoPassPass2View wraps the second-pass (table) state of a two-pass
// spanner as a Sketch — typically a worker created by ForkPass2.
func TwoPassPass2View(s *TwoPassSpanner) Sketch { return twoPassView{s, true} }

func (v twoPassView) N() int { return v.s.N() }
func (v twoPassView) Add(u Update) error {
	if v.pass2 {
		return v.s.Pass2Update(u)
	}
	return v.s.Pass1Update(u)
}
func (v twoPassView) AddBatch(b []Update) error {
	if v.pass2 {
		return v.s.Pass2AddBatch(b)
	}
	return v.s.Pass1AddBatch(b)
}
func (v twoPassView) MarshalBinary() ([]byte, error) { return v.s.MarshalBinary() }
func (v twoPassView) UnmarshalBinary(d []byte) error { return v.s.UnmarshalBinary(d) }
func (v twoPassView) Merge(o Sketch) error {
	ov, ok := o.(twoPassView)
	if !ok || ov.pass2 != v.pass2 {
		return mergeMismatch(v, o)
	}
	if v.pass2 {
		return v.s.MergePass2(ov.s)
	}
	return v.s.MergePass1(ov.s)
}

// gridView adapts *OracleGrid, one pass at a time (see twoPassView).
type gridView struct {
	g     *OracleGrid
	pass2 bool
}

// GridPass1View wraps the first-pass state of an oracle grid as a
// Sketch.
func GridPass1View(g *OracleGrid) Sketch { return gridView{g, false} }

// GridPass2View wraps the second-pass state of an oracle grid as a
// Sketch.
func GridPass2View(g *OracleGrid) Sketch { return gridView{g, true} }

func (v gridView) N() int { return v.g.N() }
func (v gridView) Add(u Update) error {
	if v.pass2 {
		return v.g.Pass2Update(u)
	}
	return v.g.Pass1Update(u)
}
func (v gridView) AddBatch(b []Update) error {
	if v.pass2 {
		return v.g.Pass2AddBatch(b)
	}
	return v.g.Pass1AddBatch(b)
}
func (v gridView) MarshalBinary() ([]byte, error) { return v.g.MarshalBinary() }
func (v gridView) UnmarshalBinary(d []byte) error { return v.g.UnmarshalBinary(d) }
func (v gridView) Merge(o Sketch) error {
	ov, ok := o.(gridView)
	if !ok || ov.pass2 != v.pass2 {
		return mergeMismatch(v, o)
	}
	if v.pass2 {
		return v.g.MergePass2(ov.g)
	}
	return v.g.MergePass1(ov.g)
}

// IngestSketch drives src into any Sketch via the batched pipeline —
// the glue for custom states that are not Build targets.
func IngestSketch(src Source, sk Sketch) error {
	return stream.ReplayBatches(src, 0, sk.AddBatch)
}
