package dynstream

import (
	"context"
	"testing"

	"dynstream/internal/graph"
)

// TestSketchViewsWirePipeline drives every Sketch view through the
// same distributed pipeline: ingest a shard, marshal, unmarshal on a
// fresh view, merge into the other shard's view — then check the
// decoded result matches a single-state reference.
func TestSketchViewsWirePipeline(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.2, 1001)
	st := StreamWithChurn(g, 120, 1002)
	shards, err := SplitStream(st, 2)
	if err != nil {
		t.Fatal(err)
	}

	ingest := func(t *testing.T, sk Sketch, src Source) {
		t.Helper()
		if err := IngestSketch(src, sk); err != nil {
			t.Fatal(err)
		}
	}
	// shipMerge ingests shard 0 into a, shard 1 into b, round-trips b
	// through its wire encoding into fresh, and merges it into a.
	shipMerge := func(t *testing.T, a, b, fresh Sketch) {
		t.Helper()
		ingest(t, a, shards[0])
		ingest(t, b, shards[1])
		enc, err := b.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.UnmarshalBinary(enc); err != nil {
			t.Fatal(err)
		}
		if err := a.Merge(fresh); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("forest", func(t *testing.T) {
		ref := NewForestSketch(1003, st.N(), ForestConfig{})
		ingest(t, ForestSketchView(ref), st)
		want, err := ref.SpanningForest(nil)
		if err != nil {
			t.Fatal(err)
		}
		a := NewForestSketch(1003, st.N(), ForestConfig{})
		b := NewForestSketch(1003, st.N(), ForestConfig{})
		fresh := NewForestSketch(1003, st.N(), ForestConfig{})
		shipMerge(t, ForestSketchView(a), ForestSketchView(b), ForestSketchView(fresh))
		got, err := a.SpanningForest(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("forest: %d edges vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("forest edge %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	})

	t.Run("kconnectivity", func(t *testing.T) {
		a := NewKConnectivity(1004, st.N(), 2)
		b := NewKConnectivity(1004, st.N(), 2)
		fresh := NewKConnectivity(1004, st.N(), 2)
		shipMerge(t, KConnectivityView(a), KConnectivityView(b), KConnectivityView(fresh))
		if _, err := a.CertificateGraph(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("bipartiteness", func(t *testing.T) {
		a := NewBipartiteness(1005, st.N())
		b := NewBipartiteness(1005, st.N())
		fresh := NewBipartiteness(1005, st.N())
		shipMerge(t, BipartitenessView(a), BipartitenessView(b), BipartitenessView(fresh))
		if _, err := a.IsBipartite(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("msf", func(t *testing.T) {
		a := NewMSF(1006, st.N(), 8, 0.5)
		b := NewMSF(1006, st.N(), 8, 0.5)
		fresh := NewMSF(1006, st.N(), 8, 0.5)
		shipMerge(t, MSFView(a), MSFView(b), MSFView(fresh))
		if _, err := a.Forest(); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("additive", func(t *testing.T) {
		cfg := AdditiveConfig{D: 3, Seed: 1007}
		ref := NewAdditiveSpanner(st.N(), cfg)
		ingest(t, AdditiveSpannerView(ref), st)
		want, err := ref.Finish()
		if err != nil {
			t.Fatal(err)
		}
		a := NewAdditiveSpanner(st.N(), cfg)
		b := NewAdditiveSpanner(st.N(), cfg)
		fresh := NewAdditiveSpanner(st.N(), cfg)
		shipMerge(t, AdditiveSpannerView(a), AdditiveSpannerView(b), AdditiveSpannerView(fresh))
		got, err := a.Finish()
		if err != nil {
			t.Fatal(err)
		}
		edgesEqual(t, "additive view", got.Spanner, want.Spanner)
	})

	t.Run("twopass", func(t *testing.T) {
		cfg := SpannerConfig{K: 2, Seed: 1008}
		want, err := Build(context.Background(), st, SpannerTarget{Config: cfg}, WithWorkers(1))
		if err != nil {
			t.Fatal(err)
		}
		a := NewTwoPassSpanner(st.N(), cfg)
		b := NewTwoPassSpanner(st.N(), cfg)
		fresh := NewTwoPassSpanner(st.N(), cfg)
		shipMerge(t, TwoPassPass1View(a), TwoPassPass1View(b), TwoPassPass1View(fresh))
		if err := a.EndPass1(); err != nil {
			t.Fatal(err)
		}
		ingest(t, TwoPassPass2View(a), st)
		got, err := a.Finish()
		if err != nil {
			t.Fatal(err)
		}
		edgesEqual(t, "two-pass view", got.Spanner, want.Spanner)
	})

	t.Run("grid", func(t *testing.T) {
		cfg := EstimateConfig{K: 1, J: 2, T: 4, Delta: 0.34, Seed: 1009}
		a, err := NewOracleGrid(st.N(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewOracleGrid(st.N(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := NewOracleGrid(st.N(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		shipMerge(t, GridPass1View(a), GridPass1View(b), GridPass1View(fresh))
		if err := a.EndPass1(); err != nil {
			t.Fatal(err)
		}
		ingest(t, GridPass2View(a), st)
		if _, err := a.Finish(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSketchViewMergeMismatch: merging different view kinds is a typed
// configuration error.
func TestSketchViewMergeMismatch(t *testing.T) {
	f := ForestSketchView(NewForestSketch(1, 8, ForestConfig{}))
	b := BipartitenessView(NewBipartiteness(1, 8))
	if err := f.Merge(b); err == nil {
		t.Fatal("merged a bipartiteness view into a forest view")
	}
}
