package dynstream_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"dynstream"
	"dynstream/internal/graph"
)

// Checkpoint/restore matrix: for every target, a handle that is
// checkpointed mid-stream, "crashed", restored, and fed the exact
// suffix its AppliedUpdates() names must be indistinguishable from a
// handle that never crashed — its queries bit-identical, and even its
// next checkpoint byte-identical.

// runCheckpointMatrix drives one target through checkpoint → crash →
// restore → replay-suffix and diffs the restored handle against the
// uninterrupted one and a cold build.
func runCheckpointMatrix[R any](
	t *testing.T, base *dynstream.MemoryStream, batches [][]dynstream.Update,
	target dynstream.Target[R],
	equal func(t *testing.T, got, want R),
) {
	t.Helper()
	ctx := context.Background()
	h1, err := dynstream.Open(ctx, base, target)
	if err != nil {
		t.Fatal(err)
	}
	// The flat apply log a real caller would keep on disk; the restored
	// handle's AppliedUpdates() is an offset into it.
	var log []dynstream.Update
	for _, b := range batches {
		log = append(log, b...)
	}
	// Apply a prefix, snapshot mid-stream.
	cut := (len(batches) + 1) / 2
	for _, b := range batches[:cut] {
		if err := h1.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := h1.Checkpoint(&snap); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// The uninterrupted handle keeps going.
	for _, b := range batches[cut:] {
		if err := h1.Apply(b); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: h1's in-memory state is gone; only snap and the log
	// survive. Restore and replay the suffix AppliedUpdates() names.
	h2, err := dynstream.Restore(ctx, bytes.NewReader(snap.Bytes()), base, target)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	off := h2.AppliedUpdates()
	if off <= 0 || off >= int64(len(log)) {
		t.Fatalf("restored AppliedUpdates() = %d, want a mid-log offset in (0, %d)", off, len(log))
	}
	if err := h2.Apply(log[off:]); err != nil {
		t.Fatalf("replay suffix: %v", err)
	}
	if got, want := h2.AppliedUpdates(), int64(len(log)); got != want {
		t.Fatalf("after replay AppliedUpdates() = %d, want %d", got, want)
	}
	// The restored handle must answer bit-identically...
	got, err := h2.Query(ctx)
	if err != nil {
		t.Fatalf("restored query: %v", err)
	}
	want, err := h1.Query(ctx)
	if err != nil {
		t.Fatalf("uninterrupted query: %v", err)
	}
	equal(t, got, want)
	// ...agree with a cold build over base+log...
	cum := cloneStream(t, base)
	appendAll(t, cum, log)
	cold, err := dynstream.Build(ctx, cum, target)
	if err != nil {
		t.Fatalf("cold build: %v", err)
	}
	equal(t, got, cold)
	// ...and produce a byte-identical next checkpoint: the crash left
	// no trace in the state itself.
	var ck1, ck2 bytes.Buffer
	if err := h1.Checkpoint(&ck1); err != nil {
		t.Fatal(err)
	}
	if err := h2.Checkpoint(&ck2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ck1.Bytes(), ck2.Bytes()) {
		t.Fatalf("checkpoints diverge after replay: %d vs %d bytes", ck1.Len(), ck2.Len())
	}
}

func deepEqualCheck[R any](what string) func(t *testing.T, got, want R) {
	return func(t *testing.T, got, want R) {
		t.Helper()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("restored %s diverged:\n got %+v\nwant %+v", what, got, want)
		}
	}
}

func TestCheckpointRestoreForest(t *testing.T) {
	base, batches := handleStream(t, 9100)
	runCheckpointMatrix(t, base, batches, dynstream.ForestTarget{Seed: 9101},
		func(t *testing.T, got, want *dynstream.ForestSketch) {
			t.Helper()
			ge, err1 := got.SpanningForest(nil)
			we, err2 := want.SpanningForest(nil)
			if err1 != nil || err2 != nil {
				t.Fatalf("decode: %v / %v", err1, err2)
			}
			deepEqualCheck[[]graph.Edge]("forest")(t, ge, we)
		})
}

func TestCheckpointRestoreKConnectivity(t *testing.T) {
	base, batches := handleStream(t, 9200)
	runCheckpointMatrix(t, base, batches, dynstream.KConnectivityTarget{Seed: 9201, K: 3},
		func(t *testing.T, got, want *dynstream.KConnectivity) {
			t.Helper()
			gc, err1 := got.Certificate()
			wc, err2 := want.Certificate()
			if err1 != nil || err2 != nil {
				t.Fatalf("decode: %v / %v", err1, err2)
			}
			deepEqualCheck[[][]graph.Edge]("certificate")(t, gc, wc)
		})
}

func TestCheckpointRestoreBipartiteness(t *testing.T) {
	base, batches := handleStream(t, 9300)
	runCheckpointMatrix(t, base, batches, dynstream.BipartitenessTarget{Seed: 9301},
		func(t *testing.T, got, want *dynstream.Bipartiteness) {
			t.Helper()
			gb, err1 := got.IsBipartite()
			wb, err2 := want.IsBipartite()
			if err1 != nil || err2 != nil {
				t.Fatalf("decode: %v / %v", err1, err2)
			}
			if gb != wb {
				t.Fatalf("restored bipartiteness %v, want %v", gb, wb)
			}
		})
}

func TestCheckpointRestoreMSF(t *testing.T) {
	base, batches := handleStream(t, 9400)
	runCheckpointMatrix(t, base, batches, dynstream.MSFTarget{Seed: 9401, WMax: 8, Gamma: 0.5},
		func(t *testing.T, got, want *dynstream.MSF) {
			t.Helper()
			gf, err1 := got.Forest()
			wf, err2 := want.Forest()
			if err1 != nil || err2 != nil {
				t.Fatalf("decode: %v / %v", err1, err2)
			}
			deepEqualCheck[[]graph.Edge]("msf")(t, gf, wf)
		})
}

func TestCheckpointRestoreAdditive(t *testing.T) {
	base, batches := handleStream(t, 9500)
	runCheckpointMatrix(t, base, batches,
		dynstream.AdditiveTarget{Config: dynstream.AdditiveConfig{D: 4, Seed: 9501}},
		func(t *testing.T, got, want *dynstream.AdditiveResult) {
			t.Helper()
			edgesEqual(t, "restored additive", got.Spanner, want.Spanner)
		})
}

func TestCheckpointRestoreSpanner(t *testing.T) {
	base, batches := handleStream(t, 9600)
	runCheckpointMatrix(t, base, batches,
		dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 3, Seed: 9601, CollectAugmented: true}},
		func(t *testing.T, got, want *dynstream.SpannerResult) {
			t.Helper()
			edgesEqual(t, "restored spanner", got.Spanner, want.Spanner)
			edgesEqual(t, "restored augmented", got.Augmented, want.Augmented)
			if got.Terminals != want.Terminals || !reflect.DeepEqual(got.Stats, want.Stats) {
				t.Fatalf("stats differ: %+v vs %+v", got.Stats, want.Stats)
			}
		})
}

func TestCheckpointRestoreSparsifier(t *testing.T) {
	// Insert-only complete-graph stream, like the sparsifier handle
	// matrix: small n keeps the grid extraction cheap.
	target := dynstream.SparsifierTarget{Config: dynstream.SparsifierConfig{
		K: 1, Z: 4, Seed: 9701,
		Estimate: dynstream.EstimateConfig{K: 1, J: 2, T: 5, Delta: 0.34, Seed: 9702},
	}}
	g := graph.Complete(10)
	full := dynstream.StreamFromGraph(g, 9700)
	var ups []dynstream.Update
	if err := full.Replay(func(u dynstream.Update) error { ups = append(ups, u); return nil }); err != nil {
		t.Fatal(err)
	}
	cut := len(ups) * 3 / 5
	base := dynstream.NewMemoryStream(full.N())
	appendAll(t, base, ups[:cut])
	rest := ups[cut:]
	per := (len(rest) + 3) / 4
	var batches [][]dynstream.Update
	for i := 0; i < len(rest); i += per {
		end := i + per
		if end > len(rest) {
			end = len(rest)
		}
		batches = append(batches, rest[i:end])
	}
	runCheckpointMatrix(t, base, batches, target,
		func(t *testing.T, got, want *dynstream.SparsifierResult) {
			t.Helper()
			edgesEqual(t, "restored sparsifier", got.Sparsifier, want.Sparsifier)
		})
}

// TestCheckpointRejectsDamage pins the failure modes: every corrupt,
// truncated, mistyped, or mismatched snapshot must surface
// ErrBadCheckpoint — never a silent wrong restore.
func TestCheckpointRejectsDamage(t *testing.T) {
	ctx := context.Background()
	base, batches := handleStream(t, 9800)
	target := dynstream.ForestTarget{Seed: 9801}
	h, err := dynstream.Open(ctx, base, target)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Apply(batches[0]); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := h.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()

	restoreForest := func(data []byte, src dynstream.Source) error {
		_, err := dynstream.Restore(ctx, bytes.NewReader(data), src, target)
		return err
	}
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[0] ^= 0xff
		if err := restoreForest(bad, base); !errors.Is(err, dynstream.ErrBadCheckpoint) {
			t.Fatalf("got %v, want ErrBadCheckpoint", err)
		}
	})
	t.Run("flipped byte", func(t *testing.T) {
		// Flip a spread of byte positions (every position would be
		// quadratic in the snapshot size); each single-byte corruption
		// must be caught — by the magic check or a section CRC.
		step := len(good) / 64
		if step < 1 {
			step = 1
		}
		positions := []int{len(good) - 1, len(good) - 3}
		for i := 0; i < len(good); i += step {
			positions = append(positions, i)
		}
		for _, i := range positions {
			bad := append([]byte(nil), good...)
			bad[i] ^= 0x20
			if err := restoreForest(bad, base); !errors.Is(err, dynstream.ErrBadCheckpoint) {
				t.Fatalf("flip at byte %d: got %v, want ErrBadCheckpoint", i, err)
			}
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{1, len(good) / 2, len(good) - 1} {
			if err := restoreForest(good[:cut], base); !errors.Is(err, dynstream.ErrBadCheckpoint) {
				t.Fatalf("truncation at %d: got %v, want ErrBadCheckpoint", cut, err)
			}
		}
	})
	t.Run("wrong target", func(t *testing.T) {
		_, err := dynstream.Restore(ctx, bytes.NewReader(good), base,
			dynstream.BipartitenessTarget{Seed: 9801})
		if !errors.Is(err, dynstream.ErrBadCheckpoint) {
			t.Fatalf("got %v, want ErrBadCheckpoint", err)
		}
	})
	t.Run("wrong n", func(t *testing.T) {
		other := dynstream.NewMemoryStream(base.N() + 1)
		if err := restoreForest(good, other); !errors.Is(err, dynstream.ErrBadCheckpoint) {
			t.Fatalf("got %v, want ErrBadCheckpoint", err)
		}
	})
	t.Run("remote rejected", func(t *testing.T) {
		_, err := dynstream.Restore(ctx, bytes.NewReader(good), base, target,
			dynstream.WithRemoteWorkers("127.0.0.1:1"))
		if !errors.Is(err, dynstream.ErrBadConfig) {
			t.Fatalf("got %v, want ErrBadConfig", err)
		}
	})
}

// TestCheckpointConcurrentWithApply is the torn-batch gate: one
// goroutine Applies fixed-size batches while others Query and
// Checkpoint the same handle. Checkpoint holds the handle's mutex, so
// every snapshot must contain a whole number of batches — restoring it
// must land exactly on a batch boundary and decode bit-identically to
// a cold build over that prefix. Run under -race this doubles as the
// data-race gate for Checkpoint.
func TestCheckpointConcurrentWithApply(t *testing.T) {
	ctx := context.Background()
	const n = 64
	const batchSize = 7
	target := dynstream.ForestTarget{Seed: 9901}
	// A growing path: edge i connects (i, i+1), applied in batches of
	// batchSize.
	var log []dynstream.Update
	for i := 0; i < n-1; i++ {
		log = append(log, dynstream.Update{U: i, V: i + 1, Delta: 1, W: 1})
	}
	log = log[:(len(log)/batchSize)*batchSize]
	base := dynstream.NewMemoryStream(n)
	h, err := dynstream.Open(ctx, base, target)
	if err != nil {
		t.Fatal(err)
	}
	var snaps [][]byte
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(2)
	go func() { // checkpointer
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var buf bytes.Buffer
			if err := h.Checkpoint(&buf); err != nil {
				t.Errorf("concurrent checkpoint: %v", err)
				return
			}
			snaps = append(snaps, buf.Bytes())
			time.Sleep(200 * time.Microsecond) // bound the snapshot count
		}
	}()
	go func() { // querier
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := h.Query(ctx); err != nil {
				t.Errorf("concurrent query: %v", err)
				return
			}
		}
	}()
	for i := 0; i < len(log); i += batchSize {
		if err := h.Apply(log[i : i+batchSize]); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond) // let snapshots land between batches
	}
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}
	if len(snaps) > 32 { // bound the validation cost
		sampled := make([][]byte, 0, 32)
		for i := 0; i < 32; i++ {
			sampled = append(sampled, snaps[i*len(snaps)/32])
		}
		snaps = sampled
	}
	// Every snapshot must be a consistent cut: a whole number of
	// batches, decoding exactly as a cold build over that prefix.
	for i, snap := range snaps {
		h2, err := dynstream.Restore(ctx, bytes.NewReader(snap), base, target)
		if err != nil {
			t.Fatalf("snapshot %d: restore: %v", i, err)
		}
		off := h2.AppliedUpdates()
		if off%batchSize != 0 {
			t.Fatalf("snapshot %d: applied %d updates, not a multiple of the batch size %d (torn batch)", i, off, batchSize)
		}
		got, err := h2.Query(ctx)
		if err != nil {
			t.Fatalf("snapshot %d: query: %v", i, err)
		}
		prefix := dynstream.NewMemoryStream(n)
		appendAll(t, prefix, log[:off])
		want, err := dynstream.Build(ctx, prefix, target)
		if err != nil {
			t.Fatalf("snapshot %d: cold build: %v", i, err)
		}
		ge, err1 := got.SpanningForest(nil)
		we, err2 := want.SpanningForest(nil)
		if err1 != nil || err2 != nil {
			t.Fatalf("snapshot %d: decode: %v / %v", i, err1, err2)
		}
		if !reflect.DeepEqual(ge, we) {
			t.Fatalf("snapshot %d (applied=%d): restored forest diverged from cold build", i, off)
		}
	}
	if testing.Verbose() {
		fmt.Printf("validated %d concurrent snapshots\n", len(snaps))
	}
}
