// Social-network scenario: a heavy-tailed (preferential-attachment)
// friendship graph with churn — edges appear and disappear over time —
// compressed in a single pass by the additive spanner of Theorem 3.
// The updates arrive over a live channel (a ChannelSource), the way an
// event bus would deliver them: the additive spanner is single-pass,
// so it never needs the stream twice and never materializes it. This
// is the workload family the paper's introduction motivates: "search
// engines and social networks require supporting various queries on
// large-scale graphs ... without having to store the entire graph in
// memory".
//
// Run: go run ./examples/socialnetwork
package main

import (
	"context"
	"fmt"
	"log"

	"dynstream"
	"dynstream/internal/graph"
)

func main() {
	const (
		n    = 300
		d    = 6 // space knob: Õ(nd) space, n/d additive error
		seed = 7
	)

	g := graph.PreferentialAttachment(n, 3, seed)
	st := dynstream.StreamWithChurn(g, 2000, seed+1)
	fmt.Printf("social graph: n=%d m=%d (max degree %d), stream %d updates\n",
		g.N(), g.M(), maxDegree(g), st.Len())

	// Simulate a live feed: a producer goroutine pushes the friendship
	// events into a channel; the build consumes them as they arrive.
	events := make(chan dynstream.Update, 256)
	go func() {
		defer close(events)
		_ = st.Replay(func(u dynstream.Update) error { events <- u; return nil })
	}()

	res, err := dynstream.Build(context.Background(),
		dynstream.NewChannelSource(n, events),
		dynstream.AdditiveTarget{Config: dynstream.AdditiveConfig{D: d, Seed: seed + 2}},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("additive spanner: %d of %d edges, %d centers, %d low-degree vertices, %d words\n",
		res.Spanner.M(), g.M(), res.Centers, res.LowDegree, res.SpaceWords)

	// "Degrees of separation" queries.
	fmt.Println("\nsample queries (u, v, exact hops, spanner hops):")
	for _, pair := range [][2]int{{0, n - 1}, {5, n - 10}, {50, 200}} {
		dg := g.BFS(pair[0])[pair[1]]
		dh := res.Spanner.BFS(pair[0])[pair[1]]
		fmt.Printf("  d(%3d,%3d) exact=%d spanner=%d (additive error %d, bound %d)\n",
			pair[0], pair[1], dg, dh, dh-dg, n/d)
	}

	rep := dynstream.VerifyAdditive(g, res.Spanner, 20)
	fmt.Printf("\nverification over %d pairs: max additive error %d (bound O(n/d) = %d), mean %.2f\n",
		rep.Pairs, rep.MaxError, n/d, rep.MeanError)
	if rep.Disconnected > 0 || rep.Shortcuts > 0 {
		log.Fatalf("invalid spanner: %+v", rep)
	}
}

func maxDegree(g *dynstream.Graph) int {
	m := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) > m {
			m = g.Degree(v)
		}
	}
	return m
}
