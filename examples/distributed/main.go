// Distributed sketching: the setting from the paper's introduction,
// with real operating-system processes. s servers each observe a shard
// of the update stream (x = x^1 + ... + x^s); every server computes the
// linear sketch of its own shard, the coordinator sums the sketches and
// extracts a spanning forest — no server ever communicates raw edges.
//
// Each server here is a separate worker PROCESS (this example re-execs
// itself in a worker role) listening on a unix socket and speaking the
// dynnet frame protocol; the coordinator is the parent process driving
// dynstream.Build with WithRemoteWorkers. Sketch(x^1)+...+Sketch(x^s) =
// Sketch(x), so deletions shipped to one server cancel insertions
// shipped to another, and the final state is byte-identical to a
// single-process build.
//
// Run: go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"dynstream"
	"dynstream/internal/dynnet"
	"dynstream/internal/graph"
)

const roleEnv = "DYNSTREAM_EXAMPLE_ROLE"

func main() {
	if sock := os.Getenv(roleEnv); sock != "" {
		workerMain(sock)
		return
	}

	const (
		n       = 120
		servers = 4
		seed    = 99
	)

	g := graph.ConnectedGNP(n, 0.08, seed)
	full := dynstream.StreamWithChurn(g, 800, seed+1)
	fmt.Printf("graph: n=%d m=%d; %d updates sharded across %d worker processes\n",
		g.N(), g.M(), full.Len(), servers)

	// Spawn the worker processes: each re-execs this binary in the
	// worker role, listening on its own unix socket.
	dir, err := os.MkdirTemp("", "dynstream-distributed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	addrs := make([]string, servers)
	for i := range addrs {
		sock := filepath.Join(dir, fmt.Sprintf("server%d.sock", i))
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%s", roleEnv, sock))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		defer func() { cmd.Process.Kill(); cmd.Wait() }()
		addrs[i] = sock
	}
	readyCtx, cancelReady := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelReady()
	for _, sock := range addrs {
		if err := waitWorkerReady(readyCtx, sock); err != nil {
			log.Fatalf("worker %s never became dialable: %v", sock, err)
		}
	}

	// The coordinator registers the workers, then Build ships every
	// server its shard of the stream and merges the returned sketch
	// bytes — the same front door as a local build, plus one option.
	ctx := context.Background()
	cluster, err := dynstream.DialWorkers(ctx, addrs...)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("registered workers: %v\n", cluster.WorkerIDs())

	state, err := dynstream.Build(ctx, full, dynstream.ForestTarget{Seed: seed + 3},
		dynstream.WithRemoteCluster(cluster))
	if err != nil {
		log.Fatal(err)
	}
	out, in := cluster.BytesOnWire()
	fmt.Printf("coordinator merged %d worker sketches; wire: %d B out, %d B in\n",
		servers, out, in)

	// The paper's guarantee, checked: the distributed state equals a
	// local single-process build bit for bit. A mismatch is a hard
	// failure so the CI examples canary catches protocol regressions.
	local, err := dynstream.Build(ctx, full, dynstream.ForestTarget{Seed: seed + 3})
	if err != nil {
		log.Fatal(err)
	}
	lb, err := local.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	db, err := state.MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	if string(lb) != string(db) {
		log.Fatalf("distributed state DIFFERS from local state (%d vs %d bytes)", len(db), len(lb))
	}
	fmt.Printf("distributed state == local state: OK (%d bytes)\n", len(db))

	forest, err := state.SpanningForest(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncoordinator extracted a forest with %d edges\n", len(forest))

	// Verify: the forest spans g and uses only real edges.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range forest {
		if !g.HasEdge(e.U, e.V) {
			log.Fatalf("forest edge (%d,%d) is not a real edge", e.U, e.V)
		}
		parent[find(e.U)] = find(e.V)
	}
	components := map[int]bool{}
	for v := 0; v < n; v++ {
		components[find(v)] = true
	}
	_, want := g.Components()
	fmt.Printf("forest spans %d component(s); graph has %d — %s\n",
		len(components), want, okString(len(components) == want))
}

// waitWorkerReady probes the worker's socket with short dials until it
// accepts, honoring ctx instead of a fixed poll budget. A successful
// probe connection is closed immediately; the worker's accept loop
// treats the dropped session as a failed coordinator and keeps
// listening.
func waitWorkerReady(ctx context.Context, sock string) error {
	d := net.Dialer{}
	for {
		probeCtx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
		conn, err := d.DialContext(probeCtx, "unix", sock)
		cancel()
		if err == nil {
			conn.Close()
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// workerMain is the re-exec'd worker role: listen on the socket, serve
// coordinator sessions until killed.
func workerMain(sock string) {
	ln, err := net.Listen("unix", sock)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	defer os.Remove(sock)
	err = dynnet.ListenAndServeWorker(context.Background(), ln, dynnet.WorkerConfig{ID: sock})
	if err != nil {
		log.Fatal(err)
	}
}

func okString(ok bool) string {
	if ok {
		return "OK"
	}
	return "MISMATCH"
}
