// Distributed sketching: the setting from the paper's introduction.
// s servers each observe a shard of the update stream (x = x^1 + ... +
// x^s); every server computes the linear sketch of its own shard, the
// coordinator sums the sketches and extracts a spanning forest — no
// server ever communicates raw edges.
//
// The servers here are real goroutines ingesting round-robin shards
// concurrently (stream.Split), and the coordinator literally sums the
// linear states with ForestSketch.Merge: Sketch(x^1)+...+Sketch(x^s) =
// Sketch(x), so deletions on one server cancel insertions on another.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"sync"

	"dynstream"
	"dynstream/internal/graph"
)

func main() {
	const (
		n       = 120
		servers = 4
		seed    = 99
	)

	g := graph.ConnectedGNP(n, 0.08, seed)
	full := dynstream.StreamWithChurn(g, 800, seed+1)
	fmt.Printf("graph: n=%d m=%d; %d updates sharded across %d servers\n",
		g.N(), g.M(), full.Len(), servers)

	// Shard the stream round-robin; each server sees only its shard.
	shards, err := dynstream.SplitStream(full, servers)
	if err != nil {
		log.Fatal(err)
	}

	// Every server builds the SAME sketch (shared seed = shared
	// sketching matrix, the paper's "agree upon a sketching matrix S")
	// over its local shard only — concurrently, one goroutine each.
	perServer := make([]*dynstream.ForestSketch, servers)
	counts := make([]int, servers)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sk := dynstream.NewForestSketch(seed+3, n, dynstream.ForestConfig{})
			if err := shards[i].Replay(func(u dynstream.Update) error {
				sk.AddUpdate(u)
				counts[i]++
				return nil
			}); err != nil {
				log.Fatal(err)
			}
			perServer[i] = sk
		}(i)
	}
	wg.Wait()
	for i, sk := range perServer {
		fmt.Printf("  server %d sketched %d updates (%d words)\n",
			i, counts[i], sk.SpaceWords())
	}

	// Coordinator: sum the linear states. This is the actual merge of
	// sketches — not a replay — so it works even if the servers had
	// shipped their states over the wire (see ForestSketch's
	// MarshalBinary).
	coordinator := perServer[0]
	for i := 1; i < servers; i++ {
		if err := coordinator.Merge(perServer[i]); err != nil {
			log.Fatal(err)
		}
	}

	forest, err := coordinator.SpanningForest(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncoordinator extracted a forest with %d edges\n", len(forest))

	// Verify: the forest spans g and uses only real edges.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range forest {
		if !g.HasEdge(e.U, e.V) {
			log.Fatalf("forest edge (%d,%d) is not a real edge", e.U, e.V)
		}
		parent[find(e.U)] = find(e.V)
	}
	components := map[int]bool{}
	for v := 0; v < n; v++ {
		components[find(v)] = true
	}
	_, want := g.Components()
	fmt.Printf("forest spans %d component(s); graph has %d — %s\n",
		len(components), want, okString(len(components) == want))
}

func okString(ok bool) string {
	if ok {
		return "OK"
	}
	return "MISMATCH"
}
