// Distributed sketching: the setting from the paper's introduction.
// s servers each observe a shard of the update stream (x = x^1 + ... +
// x^s); every server computes the linear sketch of its own shard, the
// coordinator sums the sketches and extracts a spanning forest — no
// server ever communicates raw edges.
//
// Each server here is a goroutine running the unified Build driver
// over a live ChannelSource (its local update feed), and the sketch it
// ships to the coordinator travels as BYTES: MarshalBinary on the
// server, UnmarshalBinary + Merge (through the uniform Sketch
// interface) on the coordinator. Sketch(x^1)+...+Sketch(x^s) =
// Sketch(x), so deletions on one server cancel insertions on another.
//
// Run: go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"dynstream"
	"dynstream/internal/graph"
)

func main() {
	const (
		n       = 120
		servers = 4
		seed    = 99
	)

	g := graph.ConnectedGNP(n, 0.08, seed)
	full := dynstream.StreamWithChurn(g, 800, seed+1)
	fmt.Printf("graph: n=%d m=%d; %d updates sharded across %d servers\n",
		g.N(), g.M(), full.Len(), servers)

	// Shard the stream round-robin; each server sees only its shard,
	// delivered over its own channel (a live feed, not a replayable
	// stream — Build's single-pass forest target doesn't care).
	shards, err := dynstream.SplitStream(full, servers)
	if err != nil {
		log.Fatal(err)
	}

	// Every server builds the SAME sketch (shared seed = shared
	// sketching matrix, the paper's "agree upon a sketching matrix S")
	// over its local feed only, then ships the state as bytes.
	wire := make([][]byte, servers)
	counts := make([]int, servers)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			feed := make(chan dynstream.Update, 128)
			go func() {
				defer close(feed)
				_ = shards[i].Replay(func(u dynstream.Update) error {
					counts[i]++
					feed <- u
					return nil
				})
			}()
			sk, err := dynstream.Build(context.Background(),
				dynstream.NewChannelSource(n, feed),
				dynstream.ForestTarget{Seed: seed + 3})
			if err != nil {
				log.Fatal(err)
			}
			enc, err := sk.MarshalBinary()
			if err != nil {
				log.Fatal(err)
			}
			wire[i] = enc
		}(i)
	}
	wg.Wait()
	for i, enc := range wire {
		fmt.Printf("  server %d sketched %d updates, shipped %d bytes\n",
			i, counts[i], len(enc))
	}

	// Coordinator: decode every server's bytes and sum the linear
	// states through the uniform Sketch interface — the actual merge of
	// sketches, not a replay.
	state := dynstream.NewForestSketch(seed+3, n, dynstream.ForestConfig{})
	coordinator := dynstream.ForestSketchView(state)
	for i, enc := range wire {
		shipped := dynstream.NewForestSketch(seed+3, n, dynstream.ForestConfig{})
		view := dynstream.ForestSketchView(shipped)
		if err := view.UnmarshalBinary(enc); err != nil {
			log.Fatalf("decode server %d: %v", i, err)
		}
		if err := coordinator.Merge(view); err != nil {
			log.Fatalf("merge server %d: %v", i, err)
		}
	}

	forest, err := state.SpanningForest(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncoordinator extracted a forest with %d edges\n", len(forest))

	// Verify: the forest spans g and uses only real edges.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range forest {
		if !g.HasEdge(e.U, e.V) {
			log.Fatalf("forest edge (%d,%d) is not a real edge", e.U, e.V)
		}
		parent[find(e.U)] = find(e.V)
	}
	components := map[int]bool{}
	for v := 0; v < n; v++ {
		components[find(v)] = true
	}
	_, want := g.Components()
	fmt.Printf("forest spans %d component(s); graph has %d — %s\n",
		len(components), want, okString(len(components) == want))
}

func okString(ok bool) string {
	if ok {
		return "OK"
	}
	return "MISMATCH"
}
