// Distributed sketching: the setting from the paper's introduction.
// s servers each observe a shard of the update stream (x = x^1 + ... +
// x^s); every server computes the linear sketch of its own shard, the
// coordinator sums the sketches and extracts a spanning forest — no
// server ever communicates raw edges.
//
// This demonstrates the linearity that distinguishes sketches from
// classical synopses: merging per-shard AGM sketches is exactly the
// sketch of the union stream, including cross-shard deletions.
//
// Run: go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"dynstream"
	"dynstream/internal/graph"
	"dynstream/internal/hashing"
)

func main() {
	const (
		n       = 120
		servers = 4
		seed    = 99
	)

	g := graph.ConnectedGNP(n, 0.08, seed)
	full := dynstream.StreamWithChurn(g, 800, seed+1)
	fmt.Printf("graph: n=%d m=%d; %d updates sharded across %d servers\n",
		g.N(), g.M(), full.Len(), servers)

	// Shard the stream: each update goes to a pseudorandom server.
	shards := make([]*dynstream.MemoryStream, servers)
	for i := range shards {
		shards[i] = dynstream.NewMemoryStream(n)
	}
	rng := hashing.NewSplitMix64(seed + 2)
	if err := full.Replay(func(u dynstream.Update) error {
		return shards[rng.Intn(servers)].Append(u)
	}); err != nil {
		log.Fatal(err)
	}

	// Every server builds the SAME sketch (shared seed = shared
	// sketching matrix, the paper's "agree upon a sketching matrix S")
	// over its local shard only.
	perServer := make([]*dynstream.ForestSketch, servers)
	for i := range perServer {
		perServer[i] = dynstream.NewForestSketch(seed+3, n, dynstream.ForestConfig{})
		if err := shards[i].Replay(func(u dynstream.Update) error {
			perServer[i].AddUpdate(u)
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  server %d sketched %d updates (%d words)\n",
			i, shards[i].Len(), perServer[i].SpaceWords())
	}

	// Coordinator: sum the sketches. Sketch(x^1)+...+Sketch(x^s) =
	// Sketch(x), so deletions on one server cancel insertions on
	// another. We emulate the sum by replaying shards into one sketch —
	// numerically identical to summing the linear states.
	coordinator := dynstream.NewForestSketch(seed+3, n, dynstream.ForestConfig{})
	for i := range shards {
		if err := shards[i].Replay(func(u dynstream.Update) error {
			coordinator.AddUpdate(u)
			return nil
		}); err != nil {
			log.Fatal(err)
		}
	}

	forest, err := coordinator.SpanningForest(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncoordinator extracted a forest with %d edges\n", len(forest))

	// Verify: the forest spans g and uses only real edges.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for _, e := range forest {
		if !g.HasEdge(e.U, e.V) {
			log.Fatalf("forest edge (%d,%d) is not a real edge", e.U, e.V)
		}
		parent[find(e.U)] = find(e.V)
	}
	components := map[int]bool{}
	for v := 0; v < n; v++ {
		components[find(v)] = true
	}
	_, want := g.Components()
	fmt.Printf("forest spans %d component(s); graph has %d — %s\n",
		len(components), want, okString(len(components) == want))
}

func okString(ok bool) string {
	if ok {
		return "OK"
	}
	return "MISMATCH"
}
