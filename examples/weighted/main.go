// Weighted-graph scenario (Remark 14): a graph whose edge weights span
// two orders of magnitude, compressed by the weight-class spanner. The
// WithWeightClasses option switches the unified Build driver to the
// geometric-class construction: weights are rounded into classes, the
// unweighted two-pass algorithm runs per class, and the union answers
// weighted distance queries within classBase·2^k.
//
// Run: go run ./examples/weighted
package main

import (
	"context"
	"fmt"
	"log"

	"dynstream"
	"dynstream/internal/graph"
)

func main() {
	const (
		n         = 80
		k         = 2
		classBase = 2.0
		seed      = 31
	)

	base := graph.ConnectedGNP(n, 0.15, seed)
	g := graph.RandomWeighted(base, 1, 100, seed+1)
	st := dynstream.StreamFromGraph(g, seed+2)
	fmt.Printf("weighted graph: n=%d m=%d, weights in [1, 100]\n", g.N(), g.M())

	res, err := dynstream.Build(context.Background(), st,
		dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: k, Seed: seed + 3}},
		dynstream.WithWeightClasses(classBase),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanner: %d of %d edges (%d sketch words)\n",
		res.Spanner.M(), g.M(), res.SpaceWords)
	fmt.Println("note: per-class subgraphs are sparse at this scale, so little is dropped;")
	fmt.Println("compression appears when single classes are dense (see examples/quickstart)")

	// Weighted distance queries.
	fmt.Println("\nsample queries (u, v, exact, spanner, ratio):")
	for _, pair := range [][2]int{{0, n - 1}, {2, n / 2}, {7, 2 * n / 3}} {
		dg := g.Dijkstra(pair[0])[pair[1]]
		dh := res.Spanner.Dijkstra(pair[0])[pair[1]]
		fmt.Printf("  d(%2d,%2d) exact=%.1f spanner=%.1f ratio=%.2f\n",
			pair[0], pair[1], dg, dh, dh/dg)
	}

	// Full verification: d_G <= d_H <= classBase·2^k·d_G.
	worst := 1.0
	for src := 0; src < n; src += 8 {
		dg := g.Dijkstra(src)
		dh := res.Spanner.Dijkstra(src)
		for v := 0; v < n; v++ {
			if v == src {
				continue
			}
			if dh[v] < dg[v]-1e-9 {
				log.Fatalf("shortcut at (%d,%d)", src, v)
			}
			if r := dh[v] / dg[v]; r > worst {
				worst = r
			}
		}
	}
	bound := classBase * (1 << k)
	fmt.Printf("\nworst observed weighted stretch: %.2f (bound %.0f)\n", worst, bound)
	if worst > bound {
		log.Fatal("stretch bound violated")
	}
}
