#!/bin/sh
# Two-process daemon walkthrough: a real dynstreamd serving a forest
# sketch, driven by the `dynstream client` subcommand over HTTP.
#
#   sh examples/daemon/run.sh
#
# The in-process version of the same flow is main.go in this directory.
set -eu

cd "$(dirname "$0")/../.."
workdir=$(mktemp -d)
trap 'kill $daemon_pid 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "==> building dynstreamd and dynstream"
go build -o "$workdir/dynstreamd" ./cmd/dynstreamd
go build -o "$workdir/dynstream" ./cmd/dynstream

n=500
addr=127.0.0.1:8091

echo "==> starting dynstreamd (forest, n=$n, checkpoint every 1000 updates)"
"$workdir/dynstreamd" -n "$n" -listen "$addr" -feed none \
    -checkpoint "$workdir/forest.ckpt" -every 1000 2>"$workdir/daemon.log" &
daemon_pid=$!

for i in $(seq 1 50); do
    if "$workdir/dynstream" client -addr "$addr" status >/dev/null 2>&1; then break; fi
    sleep 0.1
done

echo "==> generating a random update stream and pushing it via the client"
awk -v n="$n" 'BEGIN {
    srand(7)
    for (i = 0; i < 5000; i++) {
        u = int(rand() * n); v = int(rand() * n)
        if (u != v) print "+", u, v
    }
}' >"$workdir/updates.txt"
"$workdir/dynstream" client -addr "$addr" update <"$workdir/updates.txt"

echo "==> querying the live forest over HTTP"
"$workdir/dynstream" client -addr "$addr" query >"$workdir/live.out"
wc -l <"$workdir/live.out" | xargs echo "    forest edges:"

echo "==> daemon status"
"$workdir/dynstream" client -addr "$addr" status

echo "==> forcing a checkpoint, then draining with SIGTERM"
"$workdir/dynstream" client -addr "$addr" checkpoint
kill -TERM $daemon_pid
wait $daemon_pid
echo "    daemon exited $? (0 = clean drain)"

echo "==> restarting from the final checkpoint and re-querying"
"$workdir/dynstreamd" -n "$n" -listen "$addr" -feed none \
    -checkpoint "$workdir/forest.ckpt" 2>>"$workdir/daemon.log" &
daemon_pid=$!
for i in $(seq 1 50); do
    if "$workdir/dynstream" client -addr "$addr" status >/dev/null 2>&1; then break; fi
    sleep 0.1
done
"$workdir/dynstream" client -addr "$addr" query >"$workdir/restored.out"

if cmp -s "$workdir/live.out" "$workdir/restored.out"; then
    echo "==> restored answer is bit-identical to the pre-drain answer"
else
    echo "==> MISMATCH between live and restored answers" >&2
    exit 1
fi
