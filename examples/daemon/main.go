// The daemon, end to end and in-process: an HTTP sketch server over a
// live forest handle, queried while a feed streams updates into it,
// checkpointed, drained, and restored — every piece the dynstreamd
// binary wires together, small enough to read in one sitting.
//
// Queries under concurrent ingest are batch-boundary consistent: each
// response carries the applied-update count it observed, and an
// offline Build over exactly that prefix reproduces it bit for bit
// (that identity is linearity — sketches of update batches sum).
//
// Run: go run ./examples/daemon
// For the two-process version (real dynstreamd + client binaries) see
// run.sh next to this file.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"reflect"

	"dynstream"
	"dynstream/internal/graph"
	"dynstream/internal/serve"
)

func main() {
	const (
		n    = 200
		m    = 4000
		seed = 42
	)
	ctx := context.Background()

	// A scripted update stream: inserts with a sprinkle of deletes.
	g := graph.ConnectedGNP(n, 0.05, seed)
	var log_ []dynstream.Update
	for _, e := range g.Edges() {
		log_ = append(log_, dynstream.Update{U: e.U, V: e.V, W: 1, Delta: 1})
		if (e.U+e.V)%7 == 0 { // insert, then delete again: net zero
			log_ = append(log_, dynstream.Update{U: e.U, V: e.V, W: 1, Delta: -1},
				dynstream.Update{U: e.U, V: e.V, W: 1, Delta: 1})
		}
	}
	if len(log_) > m {
		log_ = log_[:m]
	}

	// 1. Open the live backend and the HTTP server around it.
	backend, _, _, err := serve.OpenBackend(ctx, serve.Spec{Target: "forest", N: n, Seed: seed}, "")
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "dynstreamd-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "forest.ckpt")
	srv, err := serve.NewServer([]serve.Backend{backend}, serve.ServerConfig{Checkpoint: ckpt})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("daemon listening on %s (forest, n=%d)\n", base, n)

	// 2. Feed updates through IngestFeed — the daemon's stdin path —
	// while a client queries over HTTP mid-stream.
	pr, pw := io.Pipe()
	feedDone := make(chan error, 1)
	go func() { feedDone <- srv.IngestFeed(ctx, pr, 64) }()
	go func() {
		for _, u := range log_ {
			op := "+"
			if u.Delta < 0 {
				op = "-"
			}
			fmt.Fprintf(pw, "%s %d %d\n", op, u.U, u.V)
		}
		pw.Close()
	}()

	query := func() serve.QueryResponse {
		resp, err := http.Get(base + "/v1/query")
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		var qr serve.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			log.Fatal(err)
		}
		return qr
	}
	mid := query()
	fmt.Printf("mid-stream query: %s at applied=%d\n", mid.Summary, mid.Applied)

	// The mid-stream snapshot is exact: offline Build over the same
	// prefix answers identically.
	if !reflect.DeepEqual(offlineEdges(ctx, n, log_[:mid.Applied], seed), edgesOf(mid)) {
		log.Fatal("mid-stream query diverged from offline build")
	}
	fmt.Printf("  = offline Build over those %d updates, bit for bit\n", mid.Applied)

	if err := <-feedDone; err != nil {
		log.Fatal(err)
	}
	final := query()
	fmt.Printf("final query:      %s at applied=%d\n", final.Summary, final.Applied)

	// 3. Drain: reject updates, write the final checkpoint, stop HTTP.
	if err := srv.Drain(); err != nil {
		log.Fatal(err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drained; final checkpoint at %s\n", ckpt)

	// 4. A fresh process restores the checkpoint and answers the same.
	restoredBackend, restored, _, err := serve.OpenBackend(ctx,
		serve.Spec{Target: "forest", N: n, Seed: seed}, ckpt)
	if err != nil {
		log.Fatal(err)
	}
	again, err := restoredBackend.Query(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(edgesOf(final), edgesOf(*again)) {
		log.Fatal("restored daemon answered differently")
	}
	fmt.Printf("restored from checkpoint (%d updates applied): identical answer\n", restored)
}

func edgesOf(qr serve.QueryResponse) []serve.EdgeJSON {
	if qr.Edges == nil {
		return []serve.EdgeJSON{}
	}
	return qr.Edges
}

// offlineEdges is the ground truth: a from-scratch Build over a fixed
// update prefix, rendered the same way the daemon renders.
func offlineEdges(ctx context.Context, n int, log_ []dynstream.Update, seed uint64) []serve.EdgeJSON {
	ms := dynstream.NewMemoryStream(n)
	for _, u := range log_ {
		if err := ms.Append(u); err != nil {
			log.Fatal(err)
		}
	}
	sk, err := dynstream.Build(ctx, ms, dynstream.ForestTarget{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	forest, err := sk.SpanningForestParallel(nil, 1)
	if err != nil {
		log.Fatal(err)
	}
	fg := graph.New(n)
	for _, e := range forest {
		fg.AddUnitEdge(e.U, e.V)
	}
	out := []serve.EdgeJSON{}
	for _, e := range fg.Edges() {
		out = append(out, serve.EdgeJSON{U: e.U, V: e.V, W: e.W})
	}
	return out
}
