// Quickstart: build a two-pass 2^k-spanner of a random graph delivered
// as a dynamic stream (insertions and deletions) through the unified
// Build front door, then answer distance queries from the spanner and
// compare with exact distances.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"dynstream"
	"dynstream/internal/graph"
)

func main() {
	const (
		n    = 96
		k    = 2 // stretch 2^k = 4
		seed = 42
	)

	// The "true" graph exists only to generate a stream and verify
	// results; the algorithm itself sees nothing but updates.
	g := graph.ConnectedGNP(n, 0.12, seed)
	st := dynstream.StreamWithChurn(g, 500, seed+1) // 500 insert+delete pairs of noise
	fmt.Printf("graph: n=%d m=%d; stream length %d updates (with churn)\n",
		g.N(), g.M(), st.Len())

	// One driver for every construction: Build(ctx, source, target, options).
	res, err := dynstream.Build(context.Background(), st,
		dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: k}},
		dynstream.WithSeed(seed+2),
		dynstream.WithWorkers(4), // identical output to serial, by linearity
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanner: %d of %d edges kept (%.1f%%), sketch space %d words\n",
		res.Spanner.M(), g.M(), 100*float64(res.Spanner.M())/float64(g.M()),
		res.SpaceWords)

	// Distance queries: spanner distances are within a factor 2^k.
	fmt.Println("\nsample distance queries (u, v, exact, spanner):")
	for _, pair := range [][2]int{{0, n - 1}, {1, n / 2}, {3, 2 * n / 3}} {
		dg := g.BFS(pair[0])[pair[1]]
		dh := res.Spanner.BFS(pair[0])[pair[1]]
		fmt.Printf("  d(%2d,%2d) exact=%d spanner=%d\n", pair[0], pair[1], dg, dh)
	}

	rep := dynstream.VerifyStretch(g, res.Spanner, 16)
	fmt.Printf("\nverification over %d pairs: max stretch %.2f (bound %d), mean %.2f\n",
		rep.Pairs, rep.MaxStretch, 1<<k, rep.MeanStretch)
	if rep.Disconnected > 0 || rep.Shortcuts > 0 {
		log.Fatalf("invalid spanner: %+v", rep)
	}
}
