// Spectral sparsification in two passes (Corollary 2): sparsify a
// barbell graph — the classic hard instance where uniform sampling
// fails because the bridge carries all cross-cut energy — and verify
// the quadratic form is preserved. Each configuration runs through the
// unified Build driver with a worker pool fanning out the Z×H inner
// spanner constructions.
//
// Run: go run ./examples/sparsifier
package main

import (
	"context"
	"fmt"
	"log"

	"dynstream"
	"dynstream/internal/graph"
)

func main() {
	const seed = 11

	g := graph.Barbell(8, 1) // two K8's joined through one vertex
	st := dynstream.StreamFromGraph(g, seed)
	fmt.Printf("barbell graph: n=%d m=%d (bridge through vertex 8)\n", g.N(), g.M())

	// The repetition count Z is the paper's Θ(α² log n / ε³): at this
	// toy scale we sweep it to show convergence, with sketch-based
	// distance oracles inside ESTIMATE (the real two-pass algorithm).
	fmt.Println("\nconvergence of spectral error with repetitions Z (sketch oracles):")
	var h *dynstream.Graph
	var res *dynstream.SparsifierResult
	var err error
	for _, z := range []int{16, 64, 160} {
		res, err = dynstream.Build(context.Background(), st,
			dynstream.SparsifierTarget{Config: dynstream.SparsifierConfig{
				K:    1,
				Z:    z,
				Seed: seed + 1,
				Estimate: dynstream.EstimateConfig{
					K: 1, J: 6, T: 9, Delta: 0.3, Seed: seed + 2,
				},
			}},
			dynstream.WithWorkers(4),
		)
		if err != nil {
			log.Fatal(err)
		}
		h = res.Sparsifier
		eps, err := dynstream.VerifySpectral(g, h)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Z=%3d: %2d edges, ε = %.3f\n", z, h.M(), eps)
	}
	fmt.Printf("final sparsifier: %d of %d edges, %d samples, %d sketch words\n",
		h.M(), g.M(), res.Samples, res.SpaceWords)

	bridgeKept := h.HasEdge(7, 8) && h.HasEdge(8, 9)
	fmt.Printf("bridge edges preserved: %v (they must be — all cross-cut energy flows there)\n",
		bridgeKept)

	eps, err := dynstream.VerifySpectral(g, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact spectral error: ε = %.3f  ((1−ε)·L_G ⪯ L_H ⪯ (1+ε)·L_G)\n", eps)

	// Show a few quadratic forms explicitly.
	cut := make([]bool, g.N())
	for v := 0; v <= 8; v++ {
		cut[v] = true // one clique plus the bridge vertex
	}
	fmt.Printf("cross-cut weight: G=%.0f  H=%.2f\n", g.CutWeight(cut), h.CutWeight(cut))
	if eps >= 1 {
		log.Fatal("sparsifier failed to preserve the quadratic form")
	}
}
