package dynstream_test

import (
	"context"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	"dynstream"
)

// TestIncrementalSmokeLarge is the CI incremental-smoke canary: a
// two-pass spanner handle is opened over a ~1M-update churn stream,
// then 100 interleaved Apply/Query rounds run against it, and the
// final incremental result is diffed against a cold Build over the
// concatenated stream — which must match edge for edge (the
// per-round queries exercise the decode caches; the final diff proves
// none of them ever served a stale entry). Gated behind an env var:
// it replays ~1M updates twice and runs 101 spanner extractions.
func TestIncrementalSmokeLarge(t *testing.T) {
	if os.Getenv("DYNSTREAM_INCR_SMOKE") == "" {
		t.Skip("set DYNSTREAM_INCR_SMOKE=1 to run the 1M-update incremental smoke")
	}
	const (
		n         = 2000
		baseOps   = 1_000_000
		rounds    = 100
		batchSize = 40
		// Above this many live edges the generator prefers deletions, so
		// the stream is churn-heavy (most inserts die later) and the
		// graph stays sparse enough that each extraction is fast.
		targetM = 8 * n
	)
	ctx := context.Background()
	target := dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 9901}}

	rng := rand.New(rand.NewSource(9902))
	var present [][2]int
	onWire := map[[2]int]bool{}
	genUpdate := func() dynstream.Update {
		for {
			del := len(present) > 0 && (len(present) > targetM || rng.Intn(2) == 0)
			if del {
				i := rng.Intn(len(present))
				e := present[i]
				present[i] = present[len(present)-1]
				present = present[:len(present)-1]
				delete(onWire, e)
				return dynstream.Update{U: e[0], V: e[1], Delta: -1, W: 1}
			}
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if onWire[[2]int{u, v}] {
				continue
			}
			onWire[[2]int{u, v}] = true
			present = append(present, [2]int{u, v})
			return dynstream.Update{U: u, V: v, Delta: 1, W: 1}
		}
	}

	base := dynstream.NewMemoryStream(n)
	cum := dynstream.NewMemoryStream(n)
	for i := 0; i < baseOps; i++ {
		u := genUpdate()
		if err := base.Append(u); err != nil {
			t.Fatal(err)
		}
		if err := cum.Append(u); err != nil {
			t.Fatal(err)
		}
	}

	start := time.Now()
	h, err := dynstream.Open(ctx, base, target)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("opened handle over %d updates in %v", baseOps, time.Since(start))

	var live *dynstream.SpannerResult
	qStart := time.Now()
	for round := 0; round < rounds; round++ {
		batch := make([]dynstream.Update, batchSize)
		for j := range batch {
			batch[j] = genUpdate()
			if err := cum.Append(batch[j]); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.Apply(batch); err != nil {
			t.Fatalf("round %d: Apply: %v", round, err)
		}
		if live, err = h.Query(ctx); err != nil {
			t.Fatalf("round %d: Query: %v", round, err)
		}
	}
	t.Logf("%d Apply/Query rounds in %v (%v/round)",
		rounds, time.Since(qStart), time.Since(qStart)/rounds)

	cStart := time.Now()
	cold, err := dynstream.Build(ctx, cum, target)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cold rebuild in %v", time.Since(cStart))

	edgesEqual(t, "final spanner", live.Spanner, cold.Spanner)
	if live.Terminals != cold.Terminals || !reflect.DeepEqual(live.Stats, cold.Stats) {
		t.Fatalf("final stats differ: %+v vs %+v", live.Stats, cold.Stats)
	}
}
