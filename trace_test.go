package dynstream

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"dynstream/internal/graph"
)

// graphKey renders a result graph to a canonical string so traced and
// untraced builds can be compared bit for bit.
func graphKey(g *Graph) string {
	var b strings.Builder
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "%d %d %g\n", e.U, e.V, e.W)
	}
	return b.String()
}

// TestTracedBuildsBitIdentical is the instrumentation-inertness proof:
// for every one of the seven targets, a build observed by a live tracer
// (events on, parallel ingest so the shard spans fire) produces exactly
// the bytes an untraced build produces.
func TestTracedBuildsBitIdentical(t *testing.T) {
	g := graph.ConnectedGNP(40, 0.18, 4101)
	st := StreamWithChurn(g, 150, 4102)
	wg := graph.RandomWeighted(graph.ConnectedGNP(36, 0.2, 4103), 1, 50, 4104)
	wst := StreamFromGraph(wg, 4105)
	ctx := context.Background()

	cases := []struct {
		name  string
		build func(opts ...Option) (string, error)
	}{
		{"spanner", func(opts ...Option) (string, error) {
			res, err := Build(ctx, st, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 4106}}, opts...)
			if err != nil {
				return "", err
			}
			return graphKey(res.Spanner), nil
		}},
		{"additive", func(opts ...Option) (string, error) {
			res, err := Build(ctx, st, AdditiveTarget{Config: AdditiveConfig{D: 4, Seed: 4107}}, opts...)
			if err != nil {
				return "", err
			}
			return graphKey(res.Spanner), nil
		}},
		{"sparsify", func(opts ...Option) (string, error) {
			res, err := Build(ctx, st, SparsifierTarget{Config: SparsifierConfig{K: 2, Z: 8, Seed: 4108}}, opts...)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%s|%d", graphKey(res.Sparsifier), res.Samples), nil
		}},
		{"forest", func(opts ...Option) (string, error) {
			sk, err := Build(ctx, st, ForestTarget{Seed: 4109}, opts...)
			if err != nil {
				return "", err
			}
			forest, err := sk.SpanningForestParallel(nil, 2)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%v", forest), nil
		}},
		{"kconn", func(opts ...Option) (string, error) {
			kc, err := Build(ctx, st, KConnectivityTarget{Seed: 4110, K: 2}, opts...)
			if err != nil {
				return "", err
			}
			cert, err := kc.CertificateGraphParallel(2)
			if err != nil {
				return "", err
			}
			return graphKey(cert), nil
		}},
		{"bipartite", func(opts ...Option) (string, error) {
			b, err := Build(ctx, st, BipartitenessTarget{Seed: 4111}, opts...)
			if err != nil {
				return "", err
			}
			bip, err := b.IsBipartiteParallel(2)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%v", bip), nil
		}},
		{"msf", func(opts ...Option) (string, error) {
			m, err := Build(ctx, wst, MSFTarget{Seed: 4112, WMax: 50, Gamma: 0.5}, opts...)
			if err != nil {
				return "", err
			}
			forest, err := m.ForestParallel(2)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("%v", forest), nil
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plain, err := tc.build(WithWorkers(3))
			if err != nil {
				t.Fatal(err)
			}
			tr := NewTracer()
			tr.EnableEvents(1 << 12)
			traced, err := tc.build(WithWorkers(3), WithTracer(tr))
			if err != nil {
				t.Fatal(err)
			}
			if plain != traced {
				t.Fatalf("traced build differs from untraced:\n--- untraced ---\n%s\n--- traced ---\n%s", plain, traced)
			}
			phases := tr.Phases()
			if len(phases) == 0 {
				t.Fatal("tracer attached but observed no phases")
			}
			seen := map[string]bool{}
			for _, p := range phases {
				seen[p.Phase] = true
			}
			if !seen["ingest"] {
				t.Fatalf("no ingest phase recorded; got %v", phases)
			}
		})
	}
}

// stripDurations blanks every duration (and the column padding in
// front of it) so the timeline is comparable across machines:
// wall-clock readings are the only nondeterminism in a serial
// (workers=1) trace.
var durRe = regexp.MustCompile(`\s+\d+(\.\d+)?(ns|µs|ms|s)\b`)

func stripDurations(s string) string { return durRe.ReplaceAllString(s, " <dur>") }

// TestTimelineGolden pins the timeline rendering of one deterministic
// serial spanner build: phase names, first-end ordering, counts and
// attribute sums are all seed-determined; only durations are blanked.
func TestTimelineGolden(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.2, 4201)
	st := StreamWithChurn(g, 100, 4202)
	tr := NewTracer()
	if _, err := Build(context.Background(), st, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 4203}},
		WithWorkers(1), WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr.WriteTimeline(&buf)
	got := stripDurations(buf.String())

	updates := int64(2 * st.Len()) // two passes over the stream
	want := fmt.Sprintf(`== trace: 3 phases, <dur> summed wall ==
PHASE                     COUNT        WALL  ATTRS
ingest                        2 <dur>  updates=%d workers=2
spanner/cluster/level00       1 <dur>  centers=30 dirty=30 attached=20 cache_hit=0 cache_miss=0
spanner/recover               1 <dur>  terminals=16 dirty=16 recovered=103 cache_hit=0 cache_miss=0
ingested updates: %d
`, updates, updates)
	if got != want {
		t.Fatalf("timeline drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestBuildWritesChromeTrace exercises the WithTraceFile sink: the file
// must parse as trace_event JSON whose complete events cover the
// ingest and both spanner phases.
func TestBuildWritesChromeTrace(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.2, 4301)
	st := StreamWithChurn(g, 100, 4302)
	path := filepath.Join(t.TempDir(), "trace.json")
	if _, err := Build(context.Background(), st, SpannerTarget{Config: SpannerConfig{K: 2, Seed: 4303}},
		WithWorkers(2), WithTraceFile(path)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	phases := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if ph == "X" {
			phases[name] = true
			for _, key := range []string{"ts", "pid", "tid"} {
				if _, ok := ev[key]; !ok {
					t.Fatalf("event %q missing %q: %v", name, key, ev)
				}
			}
		}
	}
	for _, want := range []string{"ingest", "spanner/cluster/level00", "spanner/recover"} {
		if !phases[want] {
			t.Fatalf("trace file missing phase %q; has %v", want, phases)
		}
	}
}

// TestProgressDeliveredThroughTracer pins the satellite rework of
// WithProgress: the callback now rides the tracer's ingest-observer
// path, and must keep its old contract (monotone totals, final total =
// stream length) with and without an explicit tracer attached.
func TestProgressDeliveredThroughTracer(t *testing.T) {
	g := graph.ConnectedGNP(30, 0.2, 4401)
	st := StreamWithChurn(g, 100, 4402)
	for _, withTracer := range []bool{false, true} {
		var last int64
		opts := []Option{
			WithWorkers(1),
			WithBatchSize(16),
			WithProgress(func(total int64) {
				if total < last {
					t.Errorf("progress went backwards: %d after %d", total, last)
				}
				last = total
			}),
		}
		if withTracer {
			opts = append(opts, WithTracer(NewTracer()))
		}
		if _, err := Build(context.Background(), st, ForestTarget{Seed: 4403}, opts...); err != nil {
			t.Fatal(err)
		}
		if last != int64(st.Len()) {
			t.Fatalf("withTracer=%v: final progress %d, want %d", withTracer, last, st.Len())
		}
	}
}
