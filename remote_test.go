package dynstream_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dynstream"
	"dynstream/internal/dynnet"
	"dynstream/internal/graph"
)

// startWorkers launches n in-process protocol workers on unix sockets
// and returns their dialable addresses. Worker goroutines run the same
// ServeWorker loop as `dynstream worker` processes; the process-level
// equivalence lives in cmd/dynstream's tests.
func startWorkers(t *testing.T, ctx context.Context, n int) []string {
	t.Helper()
	dir, err := os.MkdirTemp("", "dynnet")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		sock := filepath.Join(dir, fmt.Sprintf("w%d.sock", i))
		ln, err := net.Listen("unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go dynnet.ListenAndServeWorker(ctx, ln, dynnet.WorkerConfig{ID: fmt.Sprintf("w%d", i)})
		addrs[i] = "unix:" + sock
	}
	return addrs
}

func remoteTestStream(t *testing.T) *dynstream.MemoryStream {
	t.Helper()
	g := graph.ConnectedGNP(48, 0.12, 404)
	for i := 0; i < g.N(); i++ { // a weight spread for msf / weight classes
		g.AddEdge(i, (i+5)%g.N(), float64(1+i%7))
	}
	return dynstream.StreamWithChurn(g, 400, 405)
}

func edgesEqual(t *testing.T, what string, a, b *dynstream.Graph) {
	t.Helper()
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatalf("%s: edge count %d vs %d", what, len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("%s: edge %d: %v vs %v", what, i, ae[i], be[i])
		}
	}
}

func marshalEqual(t *testing.T, what string, a, b interface{ MarshalBinary() ([]byte, error) }) {
	t.Helper()
	ab, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("%s: marshaled state differs (%d vs %d bytes)", what, len(ab), len(bb))
	}
}

// TestRemoteBuildMatchesSerial is the seeded equivalence gate of the
// multi-process path: every Build target over remote workers must
// produce byte-identical sketch state (or an identical decoded result)
// to the serial build.
func TestRemoteBuildMatchesSerial(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st := remoteTestStream(t)
	addrs := startWorkers(t, ctx, 3)
	cluster, err := dynstream.DialWorkers(ctx, addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	opts := func(extra ...dynstream.Option) []dynstream.Option {
		return append([]dynstream.Option{dynstream.WithRemoteCluster(cluster)}, extra...)
	}

	t.Run("forest", func(t *testing.T) {
		serial, err := dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		remote, err := dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 11}, opts()...)
		if err != nil {
			t.Fatal(err)
		}
		marshalEqual(t, "forest sketch", serial, remote)
	})

	t.Run("kconnectivity", func(t *testing.T) {
		target := dynstream.KConnectivityTarget{Seed: 12, K: 2}
		serial, err := dynstream.Build(ctx, st, target)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := dynstream.Build(ctx, st, target, opts()...)
		if err != nil {
			t.Fatal(err)
		}
		marshalEqual(t, "k-connectivity sketch", serial, remote)
	})

	t.Run("bipartiteness", func(t *testing.T) {
		target := dynstream.BipartitenessTarget{Seed: 13}
		serial, err := dynstream.Build(ctx, st, target)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := dynstream.Build(ctx, st, target, opts()...)
		if err != nil {
			t.Fatal(err)
		}
		marshalEqual(t, "bipartiteness sketch", serial, remote)
	})

	t.Run("msf", func(t *testing.T) {
		target := dynstream.MSFTarget{Seed: 14, Gamma: 0.5} // WMax=0: remote weight scan
		serial, err := dynstream.Build(ctx, st, target)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := dynstream.Build(ctx, st, target, opts()...)
		if err != nil {
			t.Fatal(err)
		}
		marshalEqual(t, "msf sketch", serial, remote)
	})

	t.Run("additive", func(t *testing.T) {
		target := dynstream.AdditiveTarget{Config: dynstream.AdditiveConfig{D: 3, Seed: 15}}
		serial, err := dynstream.Build(ctx, st, target)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := dynstream.Build(ctx, st, target, opts()...)
		if err != nil {
			t.Fatal(err)
		}
		edgesEqual(t, "additive spanner", serial.Spanner, remote.Spanner)
	})

	t.Run("spanner", func(t *testing.T) {
		target := dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 16}}
		serial, err := dynstream.Build(ctx, st, target)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := dynstream.Build(ctx, st, target, opts()...)
		if err != nil {
			t.Fatal(err)
		}
		edgesEqual(t, "two-pass spanner", serial.Spanner, remote.Spanner)
	})

	t.Run("spanner-weight-classes", func(t *testing.T) {
		target := dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 17}}
		serial, err := dynstream.Build(ctx, st, target, dynstream.WithWeightClasses(2))
		if err != nil {
			t.Fatal(err)
		}
		remote, err := dynstream.Build(ctx, st, target, opts(dynstream.WithWeightClasses(2))...)
		if err != nil {
			t.Fatal(err)
		}
		edgesEqual(t, "weighted spanner", serial.Spanner, remote.Spanner)
	})

	t.Run("sparsifier", func(t *testing.T) {
		target := dynstream.SparsifierTarget{Config: dynstream.SparsifierConfig{
			K: 1, Z: 1, H: 4, Seed: 18,
			Estimate: dynstream.EstimateConfig{K: 1, J: 2, T: 4, Seed: 19},
		}}
		serial, err := dynstream.Build(ctx, st, target)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := dynstream.Build(ctx, st, target, opts()...)
		if err != nil {
			t.Fatal(err)
		}
		edgesEqual(t, "sparsifier", serial.Sparsifier, remote.Sparsifier)
	})

	out, in := cluster.BytesOnWire()
	if out == 0 || in == 0 {
		t.Fatalf("wire accounting reported %d out / %d in", out, in)
	}
	t.Logf("wire: %d B out, %d B in", out, in)
}

// TestRemoteOptionsGate pins the typed validation of the remote
// options at the Build front door.
func TestRemoteOptionsGate(t *testing.T) {
	ctx := context.Background()
	st := dynstream.NewMemoryStream(8)
	target := dynstream.ForestTarget{Seed: 1}

	if _, err := dynstream.Build(ctx, st, target, dynstream.WithRemoteWorkers()); !errors.Is(err, dynstream.ErrBadConfig) {
		t.Errorf("empty WithRemoteWorkers: got %v, want ErrBadConfig", err)
	}
	if _, err := dynstream.Build(ctx, st, target, dynstream.WithWorkerShards()); !errors.Is(err, dynstream.ErrBadConfig) {
		t.Errorf("WithWorkerShards without remote: got %v, want ErrBadConfig", err)
	}
	if _, err := dynstream.Build(ctx, st, target,
		dynstream.WithRemoteWorkers("nowhere.sock"),
		dynstream.WithRemoteCluster(&dynstream.RemoteCluster{})); !errors.Is(err, dynstream.ErrBadConfig) {
		t.Errorf("remote workers + cluster: got %v, want ErrBadConfig", err)
	}
	if _, err := dynstream.Build(ctx, st, target,
		dynstream.WithRemoteWorkers("/nonexistent/worker.sock")); err == nil {
		t.Error("dialing a nonexistent worker succeeded")
	}
}

// TestRemoteWorkerShards runs the worker-local-shard topology: each
// worker ingests its own shard file; the coordinator only merges. The
// merged state must equal a serial build over the shard union.
func TestRemoteWorkerShards(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st := remoteTestStream(t)

	// Split the stream into 2 shard files, one per worker.
	dir, err := os.MkdirTemp("", "dynnetshard")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	shards, err := dynstream.SplitStream(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, len(shards))
	for i, sh := range shards {
		path := filepath.Join(dir, fmt.Sprintf("shard%d.bin", i))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := dynstream.WriteBinaryStream(f, sh); err != nil {
			t.Fatal(err)
		}
		f.Close()
		sf, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer sf.Close()
		src, err := dynstream.NewReaderSource(sf)
		if err != nil {
			t.Fatal(err)
		}
		sock := filepath.Join(dir, fmt.Sprintf("w%d.sock", i))
		ln, err := net.Listen("unix", sock)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go dynnet.ListenAndServeWorker(ctx, ln, dynnet.WorkerConfig{
			ID: fmt.Sprintf("shard-worker-%d", i), Source: src,
		})
		addrs[i] = sock
	}

	serial, err := dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	placeholder := dynstream.NewMemoryStream(st.N())
	remote, err := dynstream.Build(ctx, placeholder, dynstream.ForestTarget{Seed: 21},
		dynstream.WithRemoteWorkers(addrs...), dynstream.WithWorkerShards())
	if err != nil {
		t.Fatal(err)
	}
	marshalEqual(t, "worker-shard forest sketch", serial, remote)

	// Two-pass spanner over replayable shard files also works: each
	// worker replays its file once per pass.
	sp, err := dynstream.Build(ctx, st, dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 22}})
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := dynstream.Build(ctx, placeholder, dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 22}},
		dynstream.WithRemoteWorkers(addrs...), dynstream.WithWorkerShards())
	if err != nil {
		t.Fatal(err)
	}
	edgesEqual(t, "worker-shard spanner", sp.Spanner, rsp.Spanner)

	// Targets that need the stream at the coordinator reject the mode
	// with a typed error.
	if _, err := dynstream.Build(ctx, placeholder,
		dynstream.SparsifierTarget{Config: dynstream.SparsifierConfig{K: 1, Z: 1, H: 2}},
		dynstream.WithRemoteWorkers(addrs...), dynstream.WithWorkerShards()); !errors.Is(err, dynstream.ErrBadConfig) {
		t.Errorf("sparsifier under WithWorkerShards: got %v, want ErrBadConfig", err)
	}
}

// TestRemoteWorkerShardNotReplayable is the probeSeek-style runtime
// gate over the wire: a worker whose local shard turns out to be a
// one-shot source must answer a second pass with a typed
// ErrNotReplayable ERROR frame instead of hanging the coordinator.
func TestRemoteWorkerShardNotReplayable(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st := remoteTestStream(t)

	dir, err := os.MkdirTemp("", "dynnetpipe")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The worker's shard arrives through a pipe: statically a Reader,
	// never seekable — exactly one Replay is possible.
	pr, pw := io.Pipe()
	go func() {
		dynstream.WriteBinaryStream(pw, st)
		pw.Close()
	}()
	src, err := dynstream.NewReaderSource(pr)
	if err != nil {
		t.Fatal(err)
	}
	sock := filepath.Join(dir, "w.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go dynnet.ListenAndServeWorker(ctx, ln, dynnet.WorkerConfig{ID: "pipe-worker", Source: src})

	placeholder := dynstream.NewMemoryStream(st.N())
	_, err = dynstream.Build(ctx, placeholder,
		dynstream.SpannerTarget{Config: dynstream.SpannerConfig{K: 2, Seed: 23}},
		dynstream.WithRemoteWorkers(sock), dynstream.WithWorkerShards())
	if !errors.Is(err, dynstream.ErrNotReplayable) {
		t.Fatalf("second pass over a pipe-backed worker shard: got %v, want ErrNotReplayable", err)
	}
}

// TestRemoteCancel checks that canceling the coordinator context tears
// down the build promptly instead of leaving a pass wedged.
func TestRemoteCancel(t *testing.T) {
	bg, bgCancel := context.WithTimeout(context.Background(), time.Minute)
	defer bgCancel()
	st := remoteTestStream(t)
	addrs := startWorkers(t, bg, 2)

	ctx, cancel := context.WithCancel(bg)
	fired := false
	done := make(chan error, 1)
	go func() {
		_, err := dynstream.Build(ctx, st, dynstream.ForestTarget{Seed: 31},
			dynstream.WithRemoteWorkers(addrs...),
			dynstream.WithBatchSize(8),
			dynstream.WithProgress(func(int64) {
				if !fired {
					fired = true
					cancel()
				}
			}))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled build returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled build did not return (coordinator deadlock)")
	}
	cancel()
}
